"""Single-pass (stack-algorithm) trace-driven simulation.

Figure 1's caption names the third style: "single-pass simulators,
using stack algorithms, also have a more complex structure [Mattson70,
Sugumar93, Thompson89]."  One pass over a trace yields the miss ratio
of *every* fully-associative LRU capacity at once — the classic answer
to trace-driven's repetition cost when sweeping cache sizes.

The trade-offs it makes concrete:

* one pass covers a whole size sweep, where Cache2000 re-reads the
  trace per configuration and Tapeworm re-*runs* the workload;
* the per-address work (an LRU stack search) is costlier than a cache
  lookup, modeled here at a higher per-address cycle count;
* results are exact only for fully-associative LRU — direct-mapped
  conflict misses are not captured, an accuracy gap the comparison
  benchmark quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.caches.stack import StackSimulator
from repro.tracing.pixie import PixieTracer
from repro.workloads.base import WorkloadSpec

#: per-address processing cost of the stack search; several times a
#: plain cache lookup (depth-dependent on real implementations)
STACK_CYCLES_PER_ADDRESS = 140


@dataclass(frozen=True)
class StackSweepResult:
    """Miss ratios for every requested capacity, from one pass."""

    miss_ratios: dict[int, float]  # size_bytes -> ratio
    refs: int
    generation_cycles: int
    processing_cycles: int

    @property
    def overhead_cycles(self) -> int:
        return self.generation_cycles + self.processing_cycles


class StackDriver:
    """Single-pass sweep over a workload's primary-task trace."""

    def __init__(self, spec: WorkloadSpec, line_bytes: int = 16) -> None:
        self.spec = spec
        self.line_bytes = line_bytes

    def sweep(
        self, user_refs: int, sizes_bytes: tuple[int, ...]
    ) -> StackSweepResult:
        tracer = PixieTracer(self.spec)
        simulator = StackSimulator(line_bytes=self.line_bytes)
        for chunk in tracer.trace_chunks(user_refs):
            simulator.process(chunk.addresses)
        ratios = {
            size: simulator.miss_ratio(size // self.line_bytes)
            for size in sizes_bytes
        }
        return StackSweepResult(
            miss_ratios=ratios,
            refs=user_refs,
            generation_cycles=tracer.generation_cycles,
            processing_cycles=user_refs * STACK_CYCLES_PER_ADDRESS,
        )
