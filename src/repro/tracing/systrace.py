"""System-wide trace-driven simulation (the Mogul/Borg & Chen lineage).

The paper's related-work section describes the OS-capable trace-driven
alternative: "each task in a multi-task workload is instrumented to
make entries in a system-wide trace buffer ... a modified operating
system kernel interleaves the execution of the different user-level
workload tasks ... and invokes a memory simulator whenever the trace
buffer becomes full" [Mogul91], extended by Chen to annotate the kernel
itself [Chen93b].

This driver provides that baseline on the simulated machine: every
executed chunk — user, servers, and kernel alike — is appended to a
:class:`~repro.tracing.trace.TraceBuffer`; when the buffer fills, the
Cache2000 model drains it.  Completeness matches Tapeworm's; the cost
structure does not: every reference pays annotation plus processing,
so slowdowns stay trace-driven-shaped regardless of miss ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.errors import ConfigError
from repro.tracing.cache2000 import Cache2000
from repro.tracing.trace import TraceBuffer, TraceChunk

#: per-reference cost of the inline annotation writing a buffer entry
#: (Chen's software system tracing; cheaper than Pixie's full rewrite)
ANNOTATION_CYCLES_PER_REF = 20


@dataclass
class SystemTraceReport:
    """Results of one system-wide trace-driven run."""

    workload: str
    configuration: str
    misses: dict[Component, int]
    refs: dict[Component, int]
    annotation_cycles: int = 0
    processing_cycles: int = 0
    buffer_drains: int = 0
    slowdown: float = 0.0

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    @property
    def total_refs(self) -> int:
        return sum(self.refs.values())

    @property
    def overhead_cycles(self) -> int:
        return self.annotation_cycles + self.processing_cycles


class SystemTracer:
    """Annotation hook + buffer + simulator, wired like [Mogul91].

    Install its :meth:`tap` as a workload execution's ``chunk_tap``;
    call :meth:`finish` after the run to drain the last partial buffer.
    The simulated structure must be virtually indexed — the trace
    records virtual addresses, tagged by task.
    """

    def __init__(
        self,
        cache_config: CacheConfig,
        buffer_refs: int = 256 * 1024,
    ) -> None:
        if cache_config.indexing is not Indexing.VIRTUAL:
            raise ConfigError(
                "system tracing records virtual addresses; configure a "
                "virtually-indexed cache"
            )
        self.simulator = Cache2000(cache_config)
        self.buffer = TraceBuffer(capacity_refs=buffer_refs)
        self.annotation_cycles = 0
        self.buffer_drains = 0

    def tap(self, tid: int, component: Component, vas) -> None:
        """The per-chunk annotation: buffer the addresses."""
        self.annotation_cycles += len(vas) * ANNOTATION_CYCLES_PER_REF
        if self.buffer.append(TraceChunk(vas, tid, component)):
            self._drain()

    def _drain(self) -> None:
        self.buffer_drains += 1
        for chunk in self.buffer.drain():
            self.simulator.simulate_chunk(
                chunk.addresses, tid=chunk.tid, component=chunk.component
            )

    def finish(self) -> None:
        if len(self.buffer):
            self._drain()

    def report(self, workload: str) -> SystemTraceReport:
        stats = self.simulator.stats
        return SystemTraceReport(
            workload=workload,
            configuration=self.simulator.config.describe(),
            misses=dict(stats.misses),
            refs=dict(stats.refs),
            annotation_cycles=self.annotation_cycles,
            processing_cycles=self.simulator.processing_cycles,
            buffer_drains=self.buffer_drains,
        )
