"""Trace records and buffers.

A trace is a sequence of chunks of virtual addresses, each tagged with
the generating task and component.  Mogul & Borg-style system tracers
fill a buffer and invoke the simulator when it is full; the buffer here
supports that pattern as well as npz-file round trips for offline
simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro._types import Component
from repro.errors import TraceError


@dataclass(frozen=True)
class TraceChunk:
    """One run of consecutive references from a single task."""

    addresses: np.ndarray
    tid: int
    component: Component

    def __post_init__(self) -> None:
        if self.addresses.ndim != 1:
            raise TraceError("trace chunk addresses must be 1-D")

    def __len__(self) -> int:
        return len(self.addresses)


class TraceBuffer:
    """An in-memory trace: append chunks, drain to a simulator or disk."""

    def __init__(self, capacity_refs: int | None = None) -> None:
        self._chunks: list[TraceChunk] = []
        self.capacity_refs = capacity_refs
        self.total_refs = 0

    def append(self, chunk: TraceChunk) -> bool:
        """Add a chunk; returns True when the buffer is full (time for
        the owner to invoke the simulator and drain)."""
        self._chunks.append(chunk)
        self.total_refs += len(chunk)
        return (
            self.capacity_refs is not None
            and self.total_refs >= self.capacity_refs
        )

    def drain(self) -> list[TraceChunk]:
        chunks, self._chunks = self._chunks, []
        self.total_refs = 0
        return chunks

    def chunks(self) -> list[TraceChunk]:
        return list(self._chunks)

    def __len__(self) -> int:
        return self.total_refs

    # -- persistence

    def save(self, path: str | Path) -> None:
        """Write the buffered trace to an .npz file."""
        if not self._chunks:
            raise TraceError("refusing to save an empty trace")
        addresses = np.concatenate([c.addresses for c in self._chunks])
        boundaries = np.cumsum([len(c) for c in self._chunks])
        tids = np.array([c.tid for c in self._chunks], dtype=np.int64)
        components = np.array(
            [c.component.value for c in self._chunks], dtype="U16"
        )
        np.savez_compressed(
            path,
            addresses=addresses,
            boundaries=boundaries,
            tids=tids,
            components=components,
        )

    @classmethod
    def load(cls, path: str | Path) -> "TraceBuffer":
        try:
            data = np.load(path, allow_pickle=False)
        except (OSError, ValueError) as exc:
            raise TraceError(f"cannot load trace {path}: {exc}") from exc
        required = {"addresses", "boundaries", "tids", "components"}
        if not required <= set(data.files):
            raise TraceError(
                f"trace file {path} missing arrays "
                f"{sorted(required - set(data.files))}"
            )
        buffer = cls()
        start = 0
        for end, tid, component in zip(
            data["boundaries"], data["tids"], data["components"]
        ):
            buffer.append(
                TraceChunk(
                    addresses=data["addresses"][start:end],
                    tid=int(tid),
                    component=Component(str(component)),
                )
            )
            start = int(end)
        return buffer
