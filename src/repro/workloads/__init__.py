"""Synthetic models of the paper's eight workloads (Tables 3 and 4).

The original binaries (SPEC92, Berkeley mpeg_play, the SPEC SDM suite)
and their 1994 Ultrix builds are unobtainable, so each workload is a
calibrated synthetic model: a set of per-task reference streams with
loop/working-set structure sized to reproduce the paper's measured
footprints, per-component time fractions, fork trees, and (at a 4 KB
I-cache) the per-component miss-ratio bands of Table 6.
"""

from repro.workloads.locality import BlockLoopStream, MixedStream, Procedure
from repro.workloads.base import (
    DemandShare,
    PhaseSpec,
    TaskSpec,
    WorkloadMeta,
    WorkloadSpec,
)
from repro.workloads.registry import WORKLOAD_NAMES, get_workload

__all__ = [
    "Procedure",
    "BlockLoopStream",
    "MixedStream",
    "WorkloadMeta",
    "TaskSpec",
    "DemandShare",
    "PhaseSpec",
    "WorkloadSpec",
    "get_workload",
    "WORKLOAD_NAMES",
]
