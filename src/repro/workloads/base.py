"""Workload specification machinery.

A :class:`WorkloadSpec` is a complete, kernel-independent description of
one workload: its Table 3/4 metadata, one :class:`TaskSpec` per distinct
task (including the system components), and a phase script describing
fork/exit timing and per-component execution shares.  The harness
materializes a spec onto a booted kernel for trap-driven runs, or pulls
just the primary user task's stream for Pixie-style tracing.

Stream seeds derive from CRC32 of ``workload:task`` — stable across
processes — so a workload's reference content never depends on the trial
seed.  Only the *interleaving* of system components does (through the
scheduler's jitter), which is exactly the paper's variance structure.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from functools import lru_cache

from repro._types import PAGE_SIZE, Component
from repro.errors import ConfigError
from repro.kernel.vm import AddressSpaceLayout, Region
from repro.workloads.locality import (
    BlockLoopStream,
    Procedure,
    lay_out_procedures,
)

#: text segments start at this VA in every address space (matches the
#: server/kernel layouts in repro.kernel.servers)
TEXT_BASE_VA = 16 * PAGE_SIZE

#: data segments start here
DATA_BASE_VA = 1024 * PAGE_SIZE

#: the names the kernel gives its boot-time tasks
SYSTEM_TASK_NAMES = {
    Component.KERNEL: "mach_kernel",
    Component.BSD_SERVER: "bsd_server",
    Component.X_SERVER: "x_server",
}


@dataclass(frozen=True)
class WorkloadMeta:
    """Table 3 description plus Table 4 measurements."""

    name: str
    description: str
    instructions_millions: float
    run_time_secs: float
    frac_kernel: float
    frac_bsd: float
    frac_x: float
    frac_user: float
    user_task_count: int

    def __post_init__(self) -> None:
        total = self.frac_kernel + self.frac_bsd + self.frac_x + self.frac_user
        if abs(total - 1.0) > 0.02:
            raise ConfigError(
                f"{self.name}: component fractions sum to {total:.3f}"
            )

    @property
    def cycles_paper(self) -> float:
        """Total cycles of the paper's run (25 MHz DECstation)."""
        return self.run_time_secs * 25e6

    @property
    def effective_cpi(self) -> float:
        """Whole-workload cycles per instruction, from Table 4."""
        return self.cycles_paper / (self.instructions_millions * 1e6)


@dataclass(frozen=True)
class TaskSpec:
    """One task's binary identity, address space, and locality model.

    ``shapes`` rows are ``(size_bytes, weight, block_bytes, repeats)``;
    see :func:`repro.workloads.locality.lay_out_procedures`.  Tasks with
    the same ``binary`` share text frames machine-wide (fork-exec of the
    same program), which drives Tapeworm's shared-page refcounts.
    """

    name: str
    component: Component
    binary: str
    shapes: tuple[tuple[int, float, int, int], ...]
    data_shapes: tuple[tuple[int, float, int, int], ...] = ()
    parent: str | None = "shell"

    def procedures(self) -> tuple[Procedure, ...]:
        return _procedures_for(TEXT_BASE_VA, self.shapes)

    def data_procedures(self) -> tuple[Procedure, ...]:
        if not self.data_shapes:
            return ()
        return _procedures_for(DATA_BASE_VA, self.data_shapes)

    def text_pages(self) -> int:
        end = max(p.end_va for p in self.procedures())
        return -(-(end - TEXT_BASE_VA) // PAGE_SIZE)

    def data_pages(self) -> int:
        data = self.data_procedures()
        if not data:
            return 0
        end = max(p.end_va for p in data)
        return -(-(end - DATA_BASE_VA) // PAGE_SIZE)

    def layout(self) -> AddressSpaceLayout:
        regions = [
            Region(
                name="text",
                start_vpn=TEXT_BASE_VA // PAGE_SIZE,
                n_pages=self.text_pages(),
                share_key=f"text:{self.binary}",
            )
        ]
        if self.data_shapes:
            regions.append(
                Region(
                    name="data",
                    start_vpn=DATA_BASE_VA // PAGE_SIZE,
                    n_pages=self.data_pages(),
                )
            )
        return AddressSpaceLayout(regions=tuple(regions))

    def stream_seed(self, workload_name: str) -> int:
        return zlib.crc32(f"{workload_name}:{self.name}".encode())

    def build_stream(self, workload_name: str) -> BlockLoopStream:
        return BlockLoopStream(
            self.procedures(), seed=self.stream_seed(workload_name)
        )

    def build_data_stream(self, workload_name: str) -> BlockLoopStream | None:
        data = self.data_procedures()
        if not data:
            return None
        return BlockLoopStream(
            data, seed=self.stream_seed(workload_name) ^ 0xDA7A
        )


@lru_cache(maxsize=1024)
def _procedures_for(
    base_va: int, shapes: tuple[tuple[int, float, int, int], ...]
) -> tuple[Procedure, ...]:
    """Memoized procedure-table construction.

    ``TaskSpec`` is frozen and its ``shapes`` rows are tuples, so the
    layout of a given spec is pure in ``(base_va, shapes)``; repeated
    ``build_stream``/``build_data_stream`` calls within one process reuse
    the same :class:`Procedure` tuple (and, through the procedure
    template cache, the same visit templates).
    """
    return lay_out_procedures(base_va, [list(s) for s in shapes])


@dataclass(frozen=True)
class DemandShare:
    """A task's share of one phase's references."""

    task_name: str
    weight: float


@dataclass(frozen=True)
class PhaseSpec:
    """One phase of a workload's execution.

    ``forks`` name user tasks created (from their TaskSpec parent) when
    the phase starts; ``exits`` name tasks terminated when it ends.
    """

    weight: float
    demands: tuple[DemandShare, ...]
    forks: tuple[str, ...] = ()
    exits: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError(f"phase weight must be positive: {self.weight}")


@dataclass(frozen=True)
class WorkloadSpec:
    """A complete workload: metadata, tasks, phase script."""

    meta: WorkloadMeta
    tasks: dict[str, TaskSpec]
    phases: tuple[PhaseSpec, ...]
    #: the single task Pixie can trace (the paper's user-level validation)
    primary_task: str

    def __post_init__(self) -> None:
        known = set(self.tasks) | {"shell"}
        for phase in self.phases:
            for demand in phase.demands:
                if demand.task_name not in known:
                    raise ConfigError(
                        f"{self.meta.name}: phase demands unknown task "
                        f"{demand.task_name!r}"
                    )
            for name in (*phase.forks, *phase.exits):
                if name not in self.tasks:
                    raise ConfigError(
                        f"{self.meta.name}: phase forks/exits unknown task "
                        f"{name!r}"
                    )
        if self.primary_task not in self.tasks:
            raise ConfigError(
                f"{self.meta.name}: primary task {self.primary_task!r} unknown"
            )

    @property
    def name(self) -> str:
        return self.meta.name

    def task(self, name: str) -> TaskSpec:
        return self.tasks[name]

    def user_task_specs(self) -> list[TaskSpec]:
        return [
            t for t in self.tasks.values() if t.component is Component.USER
        ]

    def system_task_specs(self) -> list[TaskSpec]:
        return [
            t for t in self.tasks.values() if t.component is not Component.USER
        ]

    def component_weights(self) -> dict[Component, float]:
        return {
            Component.KERNEL: self.meta.frac_kernel,
            Component.BSD_SERVER: self.meta.frac_bsd,
            Component.X_SERVER: self.meta.frac_x,
            Component.USER: self.meta.frac_user,
        }

    def scale_factor(self, total_refs: int) -> float:
        """Multiplier from a ``total_refs`` run to paper-length counts."""
        return self.meta.instructions_millions * 1e6 / total_refs


def single_task_phases(
    spec_name: str,
    user_task: str,
    meta: WorkloadMeta,
) -> tuple[PhaseSpec, ...]:
    """The standard one-phase script for a single-user-task workload:
    demands split by the Table 4 component fractions."""
    demands = [DemandShare(user_task, meta.frac_user)]
    demands.append(DemandShare(SYSTEM_TASK_NAMES[Component.KERNEL], meta.frac_kernel))
    demands.append(DemandShare(SYSTEM_TASK_NAMES[Component.BSD_SERVER], meta.frac_bsd))
    if meta.frac_x > 0:
        demands.append(DemandShare(SYSTEM_TASK_NAMES[Component.X_SERVER], meta.frac_x))
    return (
        PhaseSpec(weight=1.0, demands=tuple(demands), forks=(user_task,)),
    )
