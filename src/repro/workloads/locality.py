"""Reference-stream generators with controllable locality.

A stream models a task's instruction fetch behavior as visits to
*procedures*: contiguous code ranges walked block by block, each basic
block looped a few times before control advances.  The tuning knobs map
directly onto miss-ratio behavior in a cache of capacity ``C``:

* ``block_repeats`` sets the miss-ratio floor in tiny caches — a block
  that repeats ``r`` times with 4-byte fetches into 16-byte lines can
  miss at most once per line visit, so the local ratio floor is
  ``1 / (4 * r)``;
* ``size_bytes`` and the visit ``weight`` mix set where the curve falls
  off: a procedure hits across visits once ``C`` exceeds its size plus
  the expected working set touched between visits;
* the union of procedure footprints sets the compulsory tail.

Chunks are produced from precomputed per-procedure templates, so
generation is numpy-fast, and every stream is deterministic in its seed —
the property behind the paper's zero-variance virtually-indexed runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro._types import WORD_SIZE
from repro.errors import ConfigError


@dataclass(frozen=True)
class Procedure:
    """One contiguous range and how it is executed when visited.

    ``stride`` is the access step within a block: 4 (one word) models
    instruction fetch; coarse strides (512, 1024, ...) model data scans
    that touch each page only a few times — the access pattern TLB
    studies need.
    """

    base_va: int
    size_bytes: int
    weight: float
    block_bytes: int = 256
    block_repeats: int = 2
    passes: int = 1
    stride: int = WORD_SIZE

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.size_bytes % self.block_bytes:
            raise ConfigError(
                f"procedure size {self.size_bytes} must be a positive "
                f"multiple of block size {self.block_bytes}"
            )
        if self.base_va % WORD_SIZE:
            raise ConfigError(f"base_va {self.base_va:#x} not word aligned")
        if self.weight <= 0 or self.block_repeats < 1 or self.passes < 1:
            raise ConfigError("weight, block_repeats and passes must be >= 1")
        if (
            self.stride < WORD_SIZE
            or self.stride % WORD_SIZE
            or self.block_bytes % self.stride
        ):
            raise ConfigError(
                f"stride {self.stride} must be a word multiple dividing "
                f"block_bytes {self.block_bytes}"
            )

    @property
    def end_va(self) -> int:
        return self.base_va + self.size_bytes

    def template(self) -> np.ndarray:
        """The exact address sequence of one visit.

        Memoized per (frozen) procedure and returned read-only: every
        stream built over the same procedure shares one template array,
        so repeated ``build_stream`` calls skip the layout work.
        """
        return _template_for(self)


@lru_cache(maxsize=4096)
def _template_for(procedure: Procedure) -> np.ndarray:
    blocks = []
    for block_start in range(
        procedure.base_va, procedure.end_va, procedure.block_bytes
    ):
        block = np.arange(
            block_start,
            block_start + procedure.block_bytes,
            procedure.stride,
            dtype=np.int64,
        )
        blocks.append(np.tile(block, procedure.block_repeats))
    one_pass = np.concatenate(blocks)
    template = (
        one_pass if procedure.passes == 1 else np.tile(one_pass, procedure.passes)
    )
    template.setflags(write=False)
    return template


class BlockLoopStream:
    """An endless instruction-address stream over a procedure set."""

    def __init__(self, procedures: tuple[Procedure, ...], seed: int) -> None:
        if not procedures:
            raise ConfigError("a stream needs at least one procedure")
        self.procedures = procedures
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        weights = np.array([p.weight for p in procedures], dtype=float)
        self._probabilities = weights / weights.sum()
        self._templates = [p.template() for p in procedures]
        self._pending: list[np.ndarray] = []
        self._pending_refs = 0
        self.refs_generated = 0

    def footprint_bytes(self) -> int:
        """Total distinct code bytes the stream can touch."""
        spans: list[tuple[int, int]] = sorted(
            (p.base_va, p.end_va) for p in self.procedures
        )
        total = 0
        current_start, current_end = spans[0]
        for start, end in spans[1:]:
            if start > current_end:
                total += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        return total + (current_end - current_start)

    def span(self) -> tuple[int, int]:
        """(lowest, highest) virtual addresses the stream touches."""
        return (
            min(p.base_va for p in self.procedures),
            max(p.end_va for p in self.procedures),
        )

    def next_chunk(self, n_refs: int) -> np.ndarray:
        """Produce exactly ``n_refs`` addresses (visits span chunks)."""
        if n_refs < 0:
            raise ConfigError(f"n_refs must be non-negative, got {n_refs}")
        while self._pending_refs < n_refs:
            index = int(
                self._rng.choice(len(self._templates), p=self._probabilities)
            )
            template = self._templates[index]
            self._pending.append(template)
            self._pending_refs += len(template)
        merged = np.concatenate(self._pending) if self._pending else np.empty(
            0, dtype=np.int64
        )
        chunk, rest = merged[:n_refs], merged[n_refs:]
        self._pending = [rest] if len(rest) else []
        self._pending_refs = len(rest)
        self.refs_generated += n_refs
        return chunk


class MixedStream:
    """Interleaves an instruction stream with a data stream.

    Used for TLB simulations, whose reference stream must cover data
    pages as well as code.  Interleaving is deterministic: every
    ``instr_run`` instruction fetches are followed by ``data_run`` data
    references.
    """

    def __init__(
        self,
        instr: BlockLoopStream,
        data: BlockLoopStream,
        instr_run: int = 48,
        data_run: int = 16,
    ) -> None:
        if instr_run <= 0 or data_run < 0:
            raise ConfigError("instr_run must be positive, data_run >= 0")
        self.instr = instr
        self.data = data
        self.instr_run = instr_run
        self.data_run = data_run
        self._leftover = np.empty(0, dtype=np.int64)

    def next_chunk(self, n_refs: int) -> np.ndarray:
        pieces = [self._leftover]
        total = len(self._leftover)
        period = self.instr_run + self.data_run
        while total < n_refs:
            need_periods = max(1, (n_refs - total) // period)
            for _ in range(need_periods):
                pieces.append(self.instr.next_chunk(self.instr_run))
                if self.data_run:
                    pieces.append(self.data.next_chunk(self.data_run))
                total += period
        merged = np.concatenate(pieces)
        chunk, self._leftover = merged[:n_refs], merged[n_refs:]
        return chunk


def lay_out_procedures(
    base_va: int,
    shapes: list,
    passes: int = 1,
) -> tuple[Procedure, ...]:
    """Pack procedures back to back starting at ``base_va``.

    ``shapes`` rows are ``(size_bytes, weight, block_bytes,
    block_repeats)`` with an optional fifth ``stride`` element.  Returns
    the packed tuple; the caller sizes its region from the last
    procedure's ``end_va``.
    """
    procedures = []
    cursor = base_va
    for shape in shapes:
        size_bytes, weight, block_bytes, block_repeats = shape[:4]
        stride = shape[4] if len(shape) > 4 else WORD_SIZE
        procedures.append(
            Procedure(
                base_va=cursor,
                size_bytes=size_bytes,
                weight=weight,
                block_bytes=block_bytes,
                block_repeats=block_repeats,
                passes=passes,
                stride=stride,
            )
        )
        cursor += size_bytes
    return tuple(procedures)


def scatter_procedures(
    base_va: int,
    shapes: list,
    span_bytes: int,
    seed: int,
    align_bytes: int = 256,
) -> tuple[Procedure, ...]:
    """Place procedures at random non-overlapping offsets within a span.

    Real binaries lay hot routines wherever the linker put them, so hot
    working sets alias in a direct-mapped cache even when their total
    size fits — the conflicts set associativity exists to absorb.  The
    contiguous :func:`lay_out_procedures` packing cannot produce such
    aliasing below the footprint size; this scattered layout can, and
    the associativity ablation uses it to recover the paper's
    "higher associativity, fewer misses" behavior.
    """
    total = sum(shape[0] for shape in shapes)
    slack = span_bytes - total
    if slack < 0:
        raise ConfigError(
            f"span of {span_bytes} cannot hold {total} procedure bytes"
        )
    rng = np.random.default_rng(seed)
    order = list(rng.permutation(len(shapes)))
    # spread the slack into random aligned gaps between procedures
    cuts = sorted(
        int(rng.integers(0, slack // align_bytes + 1)) * align_bytes
        for _ in range(len(shapes))
    )
    procedures = []
    cursor = 0
    for gap_budget, index in zip(cuts, order):
        offset = min(max(cursor, gap_budget), span_bytes - total + cursor)
        shape = shapes[index]
        size_bytes, weight, block_bytes, block_repeats = shape[:4]
        stride = shape[4] if len(shape) > 4 else WORD_SIZE
        procedures.append(
            Procedure(
                base_va=base_va + offset,
                size_bytes=size_bytes,
                weight=weight,
                block_bytes=block_bytes,
                block_repeats=block_repeats,
                stride=stride,
            )
        )
        cursor = offset + size_bytes
        total -= size_bytes
    return tuple(procedures)
