"""The digital-media workloads: mpeg_play and jpeg_play.

mpeg_play is the paper's running example (Figures 2, 3, 4; Table 9): its
user-task miss-ratio curve is pinned by Figure 2's table — roughly 0.118
at 1 KB, 0.064 at 4 KB, 0.023 at 8 KB, 0.017 at 16 KB, and near zero
from 32 KB, "roughly the size of program text used by mpeg_play".
Both workloads spend heavily in the servers and kernel (Table 4).
"""

from __future__ import annotations

from repro._types import Component
from repro.workloads.base import (
    TaskSpec,
    WorkloadMeta,
    WorkloadSpec,
    single_task_phases,
)
from repro.workloads.system_tasks import make_system_tasks


def mpeg_play() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="mpeg_play",
        description=(
            "mpeg_play V2.0 (Berkeley Plateau group) displaying 610 frames "
            "of compressed video"
        ),
        instructions_millions=1423,
        run_time_secs=95.53,
        frac_kernel=0.241,
        frac_bsd=0.273,
        frac_x=0.040,
        frac_user=0.446,
        user_task_count=1,
    )
    user = TaskSpec(
        name="mpeg_play",
        component=Component.USER,
        binary="mpeg_play",
        # ~30 KB of text: hot block decode, IDCT, a cold dither/display
        # path, and a rare once-per-frame setup.  Calibrated against the
        # Figure 2 miss-ratio column (0.118 at 1 KB down to ~0 at 32 KB).
        shapes=(
            (1792, 8.0, 256, 2),    # block decode inner loops
            (4096, 5.0, 256, 2),    # IDCT
            (16384, 0.3, 512, 1),   # dither / display conversion
            (8192, 0.05, 1024, 1),  # frame setup, rare and cold
        ),
        data_shapes=(
            (1048576, 2.0, 8192, 1, 1024),  # frame buffers, 256 pages
            (65536, 1.0, 4096, 2, 256),     # decode tables
        ),
    )
    tasks = {user.name: user}
    tasks.update(
        make_system_tasks(kernel_heat="mild", bsd_heat="warm", x_heat="warm")
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=single_task_phases("mpeg_play", user.name, meta),
        primary_task=user.name,
    )


def jpeg_play() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="jpeg_play",
        description=(
            "xloadimage (Jim Frost) displaying four JPEG images"
        ),
        instructions_millions=1793,
        run_time_secs=89.70,
        frac_kernel=0.091,
        frac_bsd=0.094,
        frac_x=0.026,
        frac_user=0.788,
        user_task_count=1,
    )
    user = TaskSpec(
        name="jpeg_play",
        component=Component.USER,
        binary="jpeg_play",
        # Huffman + IDCT loops are hotter and smaller than mpeg_play's;
        # the user component misses far less (Table 6: 0.002 vs 0.027)
        shapes=(
            (2048, 14.0, 256, 12),
            (4096, 0.8, 256, 8),
            (8192, 0.02, 512, 4),
        ),
        data_shapes=((393216, 1.0, 8192, 1, 512),),  # image rows, 96 pages
    )
    tasks = {user.name: user}
    tasks.update(
        make_system_tasks(kernel_heat="mild", bsd_heat="mild", x_heat="warm")
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=single_task_phases("jpeg_play", user.name, meta),
        primary_task=user.name,
    )
