"""Workload registry: the eight workloads of Tables 3 and 4."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.workloads import media, spec, system
from repro.workloads.base import WorkloadSpec

_FACTORIES: dict[str, Callable[[], WorkloadSpec]] = {
    "xlisp": spec.xlisp,
    "espresso": spec.espresso,
    "eqntott": spec.eqntott,
    "mpeg_play": media.mpeg_play,
    "jpeg_play": media.jpeg_play,
    "ousterhout": system.ousterhout,
    "sdet": system.sdet,
    "kenbus": system.kenbus,
}

#: every workload name, in the paper's Table 3 order
WORKLOAD_NAMES: tuple[str, ...] = tuple(_FACTORIES)


def get_workload(name: str) -> WorkloadSpec:
    """Build the spec for one workload by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory()


def all_workloads() -> list[WorkloadSpec]:
    """Every workload spec, in Table 3 order."""
    return [factory() for factory in _FACTORIES.values()]
