"""The SPEC92 workloads: xlisp, espresso, eqntott.

These are the paper's single-task, user-dominant workloads.  eqntott and
espresso "exhibit very low miss counts overall" — their hot code fits in
a few kilobytes (consistent with [Gee93]) — while xlisp is the one
workload whose user task dominates total misses, with a footprint that
"performs much better in a cache only slightly larger" than 4 KB.
"""

from __future__ import annotations

from repro._types import Component
from repro.workloads.base import (
    TaskSpec,
    WorkloadMeta,
    WorkloadSpec,
    single_task_phases,
)
from repro.workloads.system_tasks import make_system_tasks


def xlisp() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="xlisp",
        description=(
            "Lisp interpreter written in C, solving the 8-queens problem "
            "(SPEC92)"
        ),
        instructions_millions=1412,
        run_time_secs=67.52,
        frac_kernel=0.073,
        frac_bsd=0.071,
        frac_x=0.0,
        frac_user=0.856,
        user_task_count=1,
    )
    user = TaskSpec(
        name="xlisp",
        component=Component.USER,
        binary="xlisp",
        # interpreter eval loop + GC + builtins: ~14 KB churning hard at
        # 4 KB, comfortable at 16 KB
        shapes=(
            (6144, 8.0, 256, 2),
            (4096, 2.0, 256, 2),
            (4096, 0.6, 512, 2),
        ),
        data_shapes=((524288, 1.0, 4096, 1, 512),),  # 128-page heap scan
    )
    tasks = {user.name: user}
    tasks.update(
        make_system_tasks(kernel_heat="hot", bsd_heat="mild", include_x=False)
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=single_task_phases("xlisp", user.name, meta),
        primary_task=user.name,
    )


def espresso() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="espresso",
        description="Boolean function minimization (SPEC92)",
        instructions_millions=534,
        run_time_secs=26.80,
        frac_kernel=0.029,
        frac_bsd=0.019,
        frac_x=0.0,
        frac_user=0.951,
        user_task_count=1,
    )
    user = TaskSpec(
        name="espresso",
        component=Component.USER,
        binary="espresso",
        # tight minimization kernels: ~8 KB, mostly resident at 4 KB
        shapes=(
            (2048, 10.0, 256, 8),
            (2048, 1.0, 256, 4),
            (4096, 0.05, 256, 2),
        ),
        data_shapes=((131072, 1.0, 4096, 2, 256),),  # PLA tables
    )
    tasks = {user.name: user}
    tasks.update(
        make_system_tasks(
            kernel_heat="cold", bsd_heat="frigid", include_x=False
        )
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=single_task_phases("espresso", user.name, meta),
        primary_task=user.name,
    )


def eqntott() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="eqntott",
        description=(
            "Translates a boolean equation to a truth table (SPEC92)"
        ),
        instructions_millions=1306,
        run_time_secs=60.98,
        frac_kernel=0.015,
        frac_bsd=0.012,
        frac_x=0.0,
        frac_user=0.972,
        user_task_count=1,
    )
    user = TaskSpec(
        name="eqntott",
        component=Component.USER,
        binary="eqntott",
        # one hot comparison loop; nearly zero misses beyond compulsory
        shapes=(
            (2048, 12.0, 256, 12),
            (1024, 1.0, 256, 8),
            (4096, 0.003, 256, 4),
        ),
        data_shapes=((262144, 1.0, 4096, 1, 1024),),  # truth-table rows
    )
    tasks = {user.name: user}
    tasks.update(
        make_system_tasks(kernel_heat="cold", bsd_heat="cold", include_x=False)
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=single_task_phases("eqntott", user.name, meta),
        primary_task=user.name,
    )
