"""The OS-intensive, multi-task workloads: ousterhout, sdet, kenbus.

These are the workloads that motivate trap-driven simulation: half or
more of their time is in the kernel and servers, and sdet/kenbus fork
hundreds of short-lived tasks (Table 4: 281 and 238).  The fork scripts
here drive exactly the machinery the paper highlights — Tapeworm
attribute inheritance over deep fork trees, and shared text pages among
re-executions of the same binaries.
"""

from __future__ import annotations

from repro._types import Component
from repro.workloads.base import (
    SYSTEM_TASK_NAMES,
    DemandShare,
    PhaseSpec,
    TaskSpec,
    WorkloadMeta,
    WorkloadSpec,
)
from repro.workloads.system_tasks import make_system_tasks

Shapes = tuple[tuple[int, float, int, int], ...]


def _system_demands(meta: WorkloadMeta) -> list[DemandShare]:
    demands = [
        DemandShare(SYSTEM_TASK_NAMES[Component.KERNEL], meta.frac_kernel),
        DemandShare(SYSTEM_TASK_NAMES[Component.BSD_SERVER], meta.frac_bsd),
    ]
    if meta.frac_x > 0:
        demands.append(
            DemandShare(SYSTEM_TASK_NAMES[Component.X_SERVER], meta.frac_x)
        )
    return demands


def _batch_phases(
    meta: WorkloadMeta,
    driver: TaskSpec | None,
    children: list[TaskSpec],
    batch_size: int,
    driver_share: float = 0.1,
) -> tuple[PhaseSpec, ...]:
    """Rounds of fork-run-exit batches, plus an optional persistent
    driver task that spans all phases."""
    batches = [
        children[i : i + batch_size]
        for i in range(0, len(children), batch_size)
    ]
    phases = []
    child_share = meta.frac_user * (1.0 - (driver_share if driver else 0.0))
    for index, batch in enumerate(batches):
        demands = _system_demands(meta)
        if driver is not None:
            demands.append(
                DemandShare(driver.name, meta.frac_user * driver_share)
            )
        for child in batch:
            demands.append(DemandShare(child.name, child_share / len(batch)))
        forks = tuple(c.name for c in batch)
        if driver is not None and index == 0:
            forks = (driver.name,) + forks
        phases.append(
            PhaseSpec(
                weight=1.0 / len(batches),
                demands=tuple(demands),
                forks=forks,
                exits=tuple(c.name for c in batch),
            )
        )
    return tuple(phases)


def ousterhout() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="ousterhout",
        description="John Ousterhout's OS benchmark suite [Ousterhout89]",
        instructions_millions=567,
        run_time_secs=37.89,
        frac_kernel=0.480,
        frac_bsd=0.314,
        frac_x=0.0,
        frac_user=0.206,
        user_task_count=15,
    )
    # fifteen distinct micro-benchmarks, each a small tight program
    children = [
        TaskSpec(
            name=f"oust_{i:02d}",
            component=Component.USER,
            binary=f"oust_bench_{i:02d}",
            shapes=(
                (2048, 8.0, 256, 4),
                (4096, 1.0, 256, 2),
            ),
        )
        for i in range(15)
    ]
    tasks = {c.name: c for c in children}
    tasks.update(
        make_system_tasks(
            kernel_heat="warm", bsd_heat="warm", include_x=False
        )
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=_batch_phases(meta, None, children, batch_size=3),
        primary_task=children[0].name,
    )


def _make_children(
    prefix: str,
    count: int,
    n_binaries: int,
    shapes_by_binary: list[Shapes],
) -> list[TaskSpec]:
    return [
        TaskSpec(
            name=f"{prefix}_{i:03d}",
            component=Component.USER,
            binary=f"{prefix}_bin_{i % n_binaries}",
            shapes=shapes_by_binary[i % len(shapes_by_binary)],
            # each invocation touches a private data working set: the
            # page-table churn that makes fork-heavy workloads hard on
            # TLBs
            data_shapes=((131072, 1.0, 4096, 1, 1024),),
        )
        for i in range(count)
    ]


def sdet() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="sdet",
        description=(
            "SPEC SDM multiprocess system benchmark: CPU, OS and I/O "
            "test programs"
        ),
        instructions_millions=823,
        run_time_secs=43.70,
        frac_kernel=0.437,
        frac_bsd=0.355,
        frac_x=0.0,
        frac_user=0.208,
        user_task_count=281,
    )
    driver = TaskSpec(
        name="sdet_driver",
        component=Component.USER,
        binary="sdet_driver",
        shapes=((4096, 4.0, 256, 4), (4096, 0.5, 512, 2)),
    )
    # 280 short-lived children drawn from five utility binaries; their
    # single-pass execution keeps the user component cold (Table 6 local
    # user miss ratio ~0.12 at 4 KB)
    shapes_by_binary: list[Shapes] = [
        ((8192, 3.0, 256, 1), (16384, 1.0, 512, 1)),
        ((8192, 4.0, 256, 1), (8192, 1.0, 512, 1)),
        ((4096, 3.0, 256, 2), (16384, 1.0, 1024, 1)),
        ((8192, 3.0, 512, 1), (8192, 0.5, 256, 2)),
        ((12288, 2.0, 512, 1), (4096, 1.0, 256, 2)),
    ]
    children = _make_children("sdet", 280, 5, shapes_by_binary)
    tasks = {driver.name: driver}
    tasks.update({c.name: c for c in children})
    tasks.update(
        make_system_tasks(
            kernel_heat="mild", bsd_heat="warm", include_x=False
        )
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=_batch_phases(meta, driver, children, batch_size=14),
        primary_task=driver.name,
    )


def kenbus() -> WorkloadSpec:
    meta = WorkloadMeta(
        name="kenbus",
        description=(
            "SPEC SDM: simulated user activity in a software development "
            "environment"
        ),
        instructions_millions=176,
        run_time_secs=23.13,
        frac_kernel=0.489,
        frac_bsd=0.291,
        frac_x=0.0,
        frac_user=0.220,
        user_task_count=238,
    )
    driver = TaskSpec(
        name="kenbus_driver",
        component=Component.USER,
        binary="kenbus_driver",
        shapes=((4096, 4.0, 256, 3),),
    )
    # 237 very short-lived tool invocations (editors, compilers, shells);
    # single-pass streams make the user component the coldest in the
    # suite (local miss ratio ~0.19 at 4 KB)
    shapes_by_binary: list[Shapes] = [
        ((8192, 4.0, 256, 1), (12288, 1.0, 512, 1)),
        ((12288, 3.0, 512, 1), (8192, 1.0, 1024, 1)),
        ((8192, 4.0, 256, 1), (8192, 0.5, 512, 1)),
        ((16384, 2.0, 512, 1),),
    ]
    children = _make_children("kenbus", 237, 4, shapes_by_binary)
    tasks = {driver.name: driver}
    tasks.update({c.name: c for c in children})
    tasks.update(
        make_system_tasks(
            kernel_heat="cold", bsd_heat="frigid", include_x=False
        )
    )
    return WorkloadSpec(
        meta=meta,
        tasks=tasks,
        phases=_batch_phases(meta, driver, children, batch_size=14),
        primary_task=driver.name,
    )
