"""System-component (kernel / BSD server / X server) task models.

Each workload drives the OS differently, and Table 6 shows the pattern:
the *less* a workload exercises a component, the colder that component
runs — eqntott's rare kernel entries miss at ~0.15 per reference in a
dedicated 4 KB cache, while xlisp's steady allocation path keeps the
kernel at ~0.035.  System streams are therefore chosen from calibrated
*heat tiers*, whose approximate dedicated-4 KB local miss ratios are:

=======  ======
hot      ~0.04
mild     ~0.06
warm     ~0.09
cold     ~0.16
frigid   ~0.25
=======  ======
"""

from __future__ import annotations

from repro._types import Component
from repro.errors import ConfigError
from repro.workloads.base import SYSTEM_TASK_NAMES, TaskSpec

Shapes = tuple[tuple[int, float, int, int], ...]

#: calibrated locality shapes per heat tier (size, weight, block, repeats)
HEAT_SHAPES: dict[str, Shapes] = {
    "hot": (
        (4096, 8.0, 256, 3),
        (16384, 1.5, 512, 2),
        (24576, 0.3, 1024, 1),
    ),
    "mild": (
        (4096, 8.0, 256, 3),
        (16384, 2.0, 512, 2),
        (32768, 0.35, 1024, 2),
    ),
    "warm": (
        (4096, 7.0, 256, 2),
        (16384, 2.0, 512, 2),
        (32768, 0.6, 1024, 1),
    ),
    "cold": (
        (8192, 5.0, 256, 2),
        (16384, 2.0, 512, 1),
        (32768, 0.4, 1024, 1),
    ),
    "frigid": (
        (8192, 5.0, 256, 1),
        (16384, 2.0, 512, 1),
        (32768, 0.6, 1024, 1),
    ),
}


def _shapes(heat: str) -> Shapes:
    try:
        return HEAT_SHAPES[heat]
    except KeyError:
        raise ConfigError(
            f"unknown heat tier {heat!r}; choose from {sorted(HEAT_SHAPES)}"
        ) from None


def make_system_tasks(
    kernel_heat: str = "mild",
    bsd_heat: str = "warm",
    x_heat: str = "warm",
    include_x: bool = True,
) -> dict[str, TaskSpec]:
    """System TaskSpecs for one workload.

    The returned names match the kernel's boot-time tasks, so the harness
    attaches these streams to the live tasks instead of forking new ones.
    """
    tasks = {
        SYSTEM_TASK_NAMES[Component.KERNEL]: TaskSpec(
            name=SYSTEM_TASK_NAMES[Component.KERNEL],
            component=Component.KERNEL,
            binary="mach_kernel",
            shapes=_shapes(kernel_heat),
            parent=None,
        ),
        SYSTEM_TASK_NAMES[Component.BSD_SERVER]: TaskSpec(
            name=SYSTEM_TASK_NAMES[Component.BSD_SERVER],
            component=Component.BSD_SERVER,
            binary="bsd_server",
            shapes=_shapes(bsd_heat),
            parent=None,
        ),
    }
    if include_x:
        tasks[SYSTEM_TASK_NAMES[Component.X_SERVER]] = TaskSpec(
            name=SYSTEM_TASK_NAMES[Component.X_SERVER],
            component=Component.X_SERVER,
            binary="x_server",
            shapes=_shapes(x_heat),
            parent=None,
        )
    return tasks
