"""Time-dilation correction (the paper's proposed adjustment)."""

import math

import pytest

from repro.analysis.dilation import DilationCurve, correct, fit_dilation_curve
from repro.errors import ConfigError


def _synthetic_points(m0=1000.0, e_max=0.15, s0=4.0):
    return [
        (s, m0 * (1 + e_max * (1 - math.exp(-s / s0))))
        for s in (0.5, 1, 2, 4, 8, 16)
    ]


def test_fit_recovers_known_parameters():
    points = _synthetic_points()
    curve = fit_dilation_curve(points)
    assert curve.m0 == pytest.approx(1000.0, rel=0.02)
    assert curve.e_max == pytest.approx(0.15, abs=0.03)
    # grid-resolution residual: small relative to the signal (~1e6)
    assert curve.residual < 0.001 * sum(m * m for _, m in points)


def test_correct_collapses_dilated_measurements():
    points = _synthetic_points()
    curve = fit_dilation_curve(points)
    corrected = [correct(m, s, curve) for s, m in points]
    spread = (max(corrected) - min(corrected)) / min(corrected)
    assert spread < 0.02  # all dilations agree after correction


def test_error_fraction_monotone_and_saturating():
    curve = DilationCurve(m0=1.0, e_max=0.2, s0=3.0, residual=0.0)
    values = [curve.error_fraction(s) for s in (0, 1, 2, 4, 8, 100)]
    assert values[0] == 0.0
    assert all(a <= b for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(0.2, rel=1e-3)


def test_needs_three_points():
    with pytest.raises(ConfigError):
        fit_dilation_curve([(1.0, 10.0), (2.0, 11.0)])


@pytest.mark.slow
def test_correction_works_on_real_figure4_data():
    """Fit the measured Figure 4 sweep and check the corrected
    estimates agree across dilations far better than the raw ones."""
    from repro.experiments.figure4 import run_figure4

    result = run_figure4("smoke", n_trials=2, sweep=(32, 8, 2, 1))
    points = [(p.slowdown, p.estimated_misses) for p in result.points]
    curve = fit_dilation_curve(points)
    raw = [m for _, m in points]
    corrected = [correct(m, s, curve) for s, m in points]
    raw_spread = (max(raw) - min(raw)) / min(raw)
    corrected_spread = (max(corrected) - min(corrected)) / min(corrected)
    assert corrected_spread < raw_spread
