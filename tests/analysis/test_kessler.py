"""Kessler's page-conflict model against simulation and the paper."""

import numpy as np
import pytest

from repro.analysis.kessler import (
    conflict_peak_cache_pages,
    expected_conflicting_pages,
    expected_occupied_bins,
    relative_conflict_stdev,
    stdev_occupied_bins,
)


def test_degenerate_cases():
    assert expected_occupied_bins(0, 8) == 0.0
    assert expected_conflicting_pages(0, 8) == 0.0
    assert stdev_occupied_bins(0, 8) == 0.0
    assert stdev_occupied_bins(5, 1) == 0.0  # one bin, always occupied


def test_one_page_never_conflicts():
    assert expected_conflicting_pages(1, 8) == 0.0


def test_all_pages_conflict_in_one_bin():
    assert expected_conflicting_pages(10, 1) == 9.0


def test_conflicts_decrease_with_cache_size():
    values = [expected_conflicting_pages(16, c) for c in (1, 2, 4, 8, 16, 64)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_monte_carlo_agreement():
    """The closed forms match a direct balls-in-bins simulation."""
    rng = np.random.default_rng(0)
    n, c, trials = 12, 16, 4000
    occupied = np.array(
        [len(set(rng.integers(0, c, size=n))) for _ in range(trials)]
    )
    assert occupied.mean() == pytest.approx(
        expected_occupied_bins(n, c), rel=0.02
    )
    assert occupied.std(ddof=1) == pytest.approx(
        stdev_occupied_bins(n, c), rel=0.10
    )


def test_variance_peak_near_footprint():
    """The paper's Table 9 observation: variation peaks at a cache size
    roughly equal to the workload's address space."""
    for n_pages in (8, 16, 64):
        peak = conflict_peak_cache_pages(n_pages)
        assert n_pages / 2 <= peak <= n_pages * 4


def test_bad_arguments():
    with pytest.raises(ValueError):
        expected_occupied_bins(-1, 4)
    with pytest.raises(ValueError):
        expected_occupied_bins(4, 0)


def test_relative_stdev_zero_when_no_conflicts_possible():
    assert relative_conflict_stdev(1, 64) == 0.0
