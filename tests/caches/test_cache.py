"""The set-associative cache model: both drivers' access paths."""

import pytest

from repro._types import Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.replacement import FIFOPolicy


@pytest.fixture
def dm_cache():
    # 4 sets of one 16-byte line
    return SetAssociativeCache(CacheConfig(size_bytes=64, line_bytes=16))


def test_access_miss_then_hit(dm_cache):
    hit, displaced = dm_cache.access(1, 0x100)
    assert not hit and displaced is None
    hit, _ = dm_cache.access(1, 0x104)  # same line
    assert hit


def test_direct_mapped_conflict(dm_cache):
    dm_cache.access(1, 0x00)
    hit, displaced = dm_cache.access(1, 0x40)  # same set (4 sets * 16B)
    assert not hit
    assert displaced == (0, 0x00)


def test_miss_insert_returns_displaced(dm_cache):
    dm_cache.miss_insert(1, 0x00)
    outcome = dm_cache.miss_insert(1, 0x40)
    assert outcome.displaced == [(0, 0x00)]
    assert outcome.levels_missed == ("l1",)


def test_miss_insert_performs_no_search(dm_cache):
    dm_cache.miss_insert(1, 0x00)
    assert dm_cache.searches == 0
    dm_cache.access(1, 0x00)
    assert dm_cache.searches == 1


def test_lru_within_set():
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=64, line_bytes=16, associativity=4)
    )
    for addr in (0x00, 0x10, 0x20, 0x30):
        cache.access(1, addr)
    cache.access(1, 0x00)  # refresh the oldest
    _, displaced = cache.access(1, 0x40)
    assert displaced == (0, 0x10)  # next-oldest goes


def test_fifo_policy_ignores_touches():
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=64, line_bytes=16, associativity=4),
        policy=FIFOPolicy(),
    )
    for addr in (0x00, 0x10, 0x20, 0x30):
        cache.access(1, addr)
    cache.access(1, 0x00)
    _, displaced = cache.access(1, 0x40)
    assert displaced == (0, 0x00)  # first in, touched or not


def test_virtual_indexing_tags_by_task():
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=64, line_bytes=16, indexing=Indexing.VIRTUAL)
    )
    cache.access(1, 0x100)
    hit, displaced = cache.access(2, 0x100)  # same VA, other task
    assert not hit
    assert displaced == (1, 0x100)


def test_physical_indexing_shares_across_tasks():
    cache = SetAssociativeCache(CacheConfig(size_bytes=64, line_bytes=16))
    cache.access(1, 0x100)
    hit, _ = cache.access(2, 0x100)
    assert hit  # same physical line, shared


def test_contains_does_not_touch_lru():
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=32, line_bytes=16, associativity=2)
    )
    cache.access(1, 0x00)
    cache.access(1, 0x10)
    assert cache.contains(1, 0x00)
    _, displaced = cache.access(1, 0x20)
    assert displaced == (0, 0x00)  # contains() did not refresh it


def test_evict(dm_cache):
    dm_cache.access(1, 0x00)
    assert dm_cache.evict(1, 0x00)
    assert not dm_cache.evict(1, 0x00)
    assert not dm_cache.contains(1, 0x00)


def test_flush_page():
    cache = SetAssociativeCache(CacheConfig(size_bytes=8192, line_bytes=16))
    for offset in range(0, 4096, 16):
        cache.access(1, 0x2000 + offset)
    cache.access(1, 0x1000)
    removed = cache.flush_page(1, 0x2000, 4096)
    assert len(removed) == 256
    assert cache.occupancy() == 1
    assert cache.contains(1, 0x1000)


def test_flush_space():
    cache = SetAssociativeCache(
        CacheConfig(size_bytes=256, line_bytes=16, indexing=Indexing.VIRTUAL)
    )
    cache.access(1, 0x00)
    cache.access(2, 0x10)
    removed = cache.flush_space(1)
    assert removed == [(1, 0x00)]
    assert cache.resident_keys() == {(2, 0x10)}


def test_occupancy_never_exceeds_capacity():
    config = CacheConfig(size_bytes=128, line_bytes=16, associativity=2)
    cache = SetAssociativeCache(config)
    for addr in range(0, 0x4000, 16):
        cache.access(1, addr)
    assert cache.occupancy() <= config.n_lines
    assert len(cache) == config.n_lines
