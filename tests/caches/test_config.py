"""Cache and TLB configuration validation."""

import pytest

from repro._types import Indexing
from repro.caches.config import CacheConfig, TLBConfig
from repro.errors import ConfigError


class TestCacheConfig:
    def test_paper_canonical_config(self):
        config = CacheConfig(size_bytes=4096)  # 4 KB, DM, 4-word lines
        assert config.line_bytes == 16
        assert config.associativity == 1
        assert config.n_lines == 256
        assert config.n_sets == 256

    def test_associative_geometry(self):
        config = CacheConfig(size_bytes=8192, line_bytes=32, associativity=4)
        assert config.n_lines == 256
        assert config.n_sets == 64

    @pytest.mark.parametrize("field,value", [
        ("size_bytes", 3000),
        ("line_bytes", 24),
        ("associativity", 3),
        ("size_bytes", 0),
    ])
    def test_non_powers_of_two_rejected(self, field, value):
        kwargs = {"size_bytes": 4096, "line_bytes": 16, "associativity": 1}
        kwargs[field] = value
        with pytest.raises(ConfigError):
            CacheConfig(**kwargs)

    def test_cache_smaller_than_one_set_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=64, line_bytes=32, associativity=4)

    def test_sub_word_lines_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=4096, line_bytes=2)

    def test_set_and_line_of(self):
        config = CacheConfig(size_bytes=1024, line_bytes=16)  # 64 sets
        assert config.set_of(0) == 0
        assert config.set_of(16) == 1
        assert config.set_of(1024) == 0  # wraps
        assert config.line_of(0x123) == 0x120

    def test_describe_mentions_geometry(self):
        text = CacheConfig(size_bytes=16384, indexing=Indexing.VIRTUAL).describe()
        assert "16K" in text and "virtual" in text


class TestTLBConfig:
    def test_fully_associative_default(self):
        config = TLBConfig(n_entries=64)
        assert config.effective_associativity == 64
        assert config.n_sets == 1
        assert config.pages_per_entry == 1

    def test_set_associative(self):
        config = TLBConfig(n_entries=64, associativity=4)
        assert config.n_sets == 16

    def test_superpages(self):
        config = TLBConfig(n_entries=64, page_bytes=64 * 1024)
        assert config.pages_per_entry == 16

    @pytest.mark.parametrize("kwargs", [
        {"n_entries": 48},
        {"n_entries": 64, "page_bytes": 2048},
        {"n_entries": 64, "page_bytes": 12288},
        {"n_entries": 64, "associativity": 128},
    ])
    def test_bad_geometry_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TLBConfig(**kwargs)

    def test_describe(self):
        assert "fully-assoc" in TLBConfig(n_entries=64).describe()
        assert "4-way" in TLBConfig(n_entries=64, associativity=4).describe()
