"""The one-pass all-associativity grid engine."""

import numpy as np
import pytest

from repro._types import Indexing
from repro.caches.config import GridConfig
from repro.caches.gridsweep import (
    DistanceHistogram,
    GridSweepReport,
    GridSweepSimulator,
    grid_job,
    grid_measure,
    grid_rows,
    grid_supported,
    run_grid_sweep,
)
from repro.caches.pipeline import compile_kernel, grid_request
from repro.caches.replacement import make_policy
from repro.errors import ConfigError
from repro.tracing.cache2000 import Cache2000
from repro.workloads import get_workload


def _stream(seed: int, n: int, span_bits: int = 15) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 1 << span_bits, n) & ~3).astype(np.int64)


class TestGridConfig:
    def test_axes_normalize_sorted(self):
        grid = GridConfig((256, 64, 128), (4, 1, 2))
        assert grid.set_counts == (64, 128, 256)
        assert grid.ways == (1, 2, 4)
        assert grid.max_ways == 4
        assert grid.n_cells == 9
        assert grid == GridConfig((64, 128, 256), (1, 2, 4))

    def test_cells_and_config_for(self):
        grid = GridConfig((64,), (1, 2), line_bytes=32)
        assert grid.cells() == ((64, 1), (64, 2))
        config = grid.config_for(64, 2)
        assert config.n_sets == 64
        assert config.associativity == 2
        assert config.size_bytes == 64 * 2 * 32

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"set_counts": (), "ways": (1,)},
            {"set_counts": (64,), "ways": ()},
            {"set_counts": (64, 64), "ways": (1,)},
            {"set_counts": (48,), "ways": (1,)},
            {"set_counts": (64,), "ways": (3,)},
            {"set_counts": (64,), "ways": (1,), "line_bytes": 24},
        ],
    )
    def test_invalid_grids_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            GridConfig(**kwargs)


class TestDistanceHistogram:
    def test_partition_and_tail_sums(self):
        hist = DistanceHistogram(counts=(10, 5, 3, 1), overflow=4, cold=7)
        assert hist.total == 30
        assert hist.hits_at(1) == 10
        assert hist.hits_at(4) == 19
        assert hist.misses_at(1) == 20
        assert hist.misses_at(4) == 11
        assert DistanceHistogram.from_dict(hist.to_dict()) == hist


class TestGridSweepSimulator:
    def test_non_lru_policies_rejected(self):
        grid = GridConfig((16, 32), (1, 2))
        for name in ("fifo", "random"):
            assert not grid_supported(make_policy(name, seed=1))
            with pytest.raises(ConfigError):
                GridSweepSimulator(grid, policy=make_policy(name, seed=1))
        assert grid_supported(None)
        assert grid_supported(make_policy("lru"))
        assert grid_supported("lru")

    def test_bit_equal_to_per_config_cache2000(self):
        grid = GridConfig((16, 32, 64), (1, 2, 4, 8))
        sweep = GridSweepSimulator(grid)
        chunks = [_stream(1, 9000), _stream(2, 5000)]
        for chunk in chunks:
            sweep.simulate_chunk(chunk)
        misses = sweep.miss_counts()
        for n_sets, ways in grid.cells():
            reference = Cache2000(grid.config_for(n_sets, ways))
            for chunk in chunks:
                reference.simulate_chunk(chunk)
            assert misses[(n_sets, ways)] == reference.stats.total_misses

    def test_histograms_partition_the_stream(self):
        grid = GridConfig((16, 64), (2, 4))
        sweep = GridSweepSimulator(grid)
        sweep.simulate_chunk(_stream(3, 8000))
        for n_sets, hist in sweep.distance_histograms().items():
            assert hist.total == sweep.refs
            for ways in grid.ways:
                assert hist.misses_at(ways) == sweep.miss_counts()[
                    (n_sets, ways)
                ]

    def test_pass_economy(self):
        # the headline claim: cells() configs cost one distance pass
        # per set count, not one simulation per cell
        grid = GridConfig((16, 32, 64, 128), (1, 2, 4, 8))
        sweep = GridSweepSimulator(grid)
        sweep.simulate_chunk(_stream(4, 4000))
        sweep.simulate_chunk(_stream(5, 4000))
        assert grid.n_cells == 16
        assert sweep.passes == 2 * len(grid.set_counts)
        assert sweep.distance_secs > 0.0

    def test_programs_are_registry_shared(self):
        grid = GridConfig((16, 32), (1, 2))
        assert compile_kernel(grid_request(grid, profile=False)) is (
            compile_kernel(grid_request(grid, profile=False))
        )

    def test_publish_metrics(self):
        from repro.telemetry.registry import MetricsRegistry

        grid = GridConfig((16, 32), (1, 2))
        sweep = GridSweepSimulator(grid)
        sweep.simulate_chunk(_stream(6, 2000))
        metrics = MetricsRegistry()
        sweep.publish_metrics(metrics)
        snapshot = metrics.snapshot()
        assert snapshot["sweep.grid.passes"] == 2
        assert snapshot["sweep.grid.configs"] == 4
        assert "sweep.grid.distance_secs" in snapshot


class TestDriverAndFarm:
    def test_report_roundtrip_and_rows(self):
        grid = GridConfig((32, 64), (1, 2), indexing=Indexing.VIRTUAL)
        report = run_grid_sweep(get_workload("espresso"), 20_000, grid)
        assert report.refs == 20_000
        payload = report.to_payload()
        restored = GridSweepReport.from_payload(payload)
        # the payload rounds wall-clock seconds; everything else is exact
        import dataclasses

        assert restored == dataclasses.replace(
            report, distance_secs=restored.distance_secs
        )
        rows = grid_rows(payload)
        assert len(rows) == grid.n_cells
        for row in rows:
            assert row["misses"] == report.miss_counts[
                (row["n_sets"], row["ways"])
            ]
            assert row["size_bytes"] == (
                row["n_sets"] * row["ways"] * grid.line_bytes
            )
            assert row["indexing"] == "virtual"

    def test_measure_matches_direct_driver(self):
        grid = GridConfig((32, 64), (1, 2))
        payload = grid_measure(
            seed=0,
            workload="espresso",
            total_refs=20_000,
            set_counts=[32, 64],
            ways=[1, 2],
        )
        direct = run_grid_sweep(get_workload("espresso"), 20_000, grid)
        expected = direct.to_payload()
        # wall-clock timing differs between runs; the results must not
        payload.pop("distance_secs")
        expected.pop("distance_secs")
        assert payload == expected

    def test_one_cached_job_per_grid(self, tmp_path):
        from repro.farm import Farm, FarmConfig

        farm = Farm(
            FarmConfig(max_workers=1, cache_dir=tmp_path / "farm-cache")
        )
        grid = GridConfig((32, 64), (1, 2))
        job = grid_job("espresso", 15_000, grid, seed=0)
        first = farm.run_jobs([job])
        assert farm.metrics.cache_hits == 0
        second = farm.run_jobs([job])
        assert farm.metrics.cache_hits == 1
        assert first == second

    def test_report_overhead_accounting(self):
        grid = GridConfig((32,), (1, 2))
        report = run_grid_sweep(get_workload("espresso"), 10_000, grid)
        assert report.generation_cycles > 0
        assert report.processing_cycles > 0
        assert report.overhead_cycles == (
            report.generation_cycles + report.processing_cycles
        )
        assert report.miss_ratio(32, 2) == (
            report.miss_counts[(32, 2)] / report.refs
        )
