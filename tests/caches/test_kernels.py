"""Unit tests for the grouped-set simulation kernels."""

import numpy as np
import pytest

from repro._types import Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.kernels import (
    GroupedSetKernel,
    MAX_SPACES,
    collapse_consecutive,
    dm_grouped_pass,
    grouped_stack_pass,
    supports_policy,
)
from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.errors import ConfigError


def _addrs(*values):
    return np.array(values, dtype=np.int64)


# ---------------------------------------------------------------------------
# policy dispatch predicate
# ---------------------------------------------------------------------------

def test_supports_policy():
    assert supports_policy(LRUPolicy())
    assert supports_policy(FIFOPolicy())
    assert not supports_policy(RandomPolicy(seed=1))
    assert not supports_policy(None)


def test_kernel_rejects_ungroupable_policy():
    with pytest.raises(ConfigError):
        GroupedSetKernel(CacheConfig(size_bytes=64, line_bytes=16), "random")


def test_kernel_rejects_out_of_range_space():
    kernel = GroupedSetKernel(CacheConfig(size_bytes=64, line_bytes=16))
    with pytest.raises(ConfigError):
        kernel.simulate_chunk(_addrs(0x0), space=MAX_SPACES)


# ---------------------------------------------------------------------------
# the direct-mapped pass
# ---------------------------------------------------------------------------

def test_dm_pass_counts_and_updates_state():
    state = np.full(4, -1, dtype=np.int64)
    sets = np.array([0, 1, 0, 0], dtype=np.int64)
    keys = np.array([10, 20, 10, 30], dtype=np.int64)
    # set 0 sees 10 (miss), 10 (hit), 30 (miss); set 1 sees 20 (miss)
    assert dm_grouped_pass(state, sets, keys) == 3
    assert state.tolist() == [30, 20, -1, -1]


def test_dm_pass_empty_chunk():
    state = np.full(2, -1, dtype=np.int64)
    empty = np.empty(0, dtype=np.int64)
    assert dm_grouped_pass(state, empty, empty) == 0


# ---------------------------------------------------------------------------
# the grouped stack pass
# ---------------------------------------------------------------------------

def test_stack_pass_lru_order():
    sets = [[]]
    # fill a 2-way set, touch the older entry, insert a third
    misses = grouped_stack_pass(sets, 2, True, [0, 0, 0, 0], [1, 2, 1, 3])
    assert misses == 3
    assert sets[0] == [3, 1]  # 2 was LRU after the re-touch of 1


def test_stack_pass_fifo_ignores_touches():
    sets = [[]]
    misses = grouped_stack_pass(sets, 2, False, [0, 0, 0, 0], [1, 2, 1, 3])
    assert misses == 3
    assert sets[0] == [3, 2]  # 1 evicted in insertion order despite the hit


def test_collapse_consecutive_drops_only_adjacent_repeats():
    sets = np.array([0, 0, 0, 1, 1], dtype=np.int64)
    keys = np.array([7, 7, 8, 7, 7], dtype=np.int64)
    assert collapse_consecutive(sets, keys).tolist() == [
        True, False, True, True, False,
    ]


# ---------------------------------------------------------------------------
# the kernel end to end
# ---------------------------------------------------------------------------

def test_kernel_spatial_locality_hits_collapse():
    """4 word-refs per 16-byte line: 1 miss, 3 collapsed hits."""
    kernel = GroupedSetKernel(
        CacheConfig(size_bytes=128, line_bytes=16, associativity=2)
    )
    assert kernel.simulate_chunk(_addrs(0x0, 0x4, 0x8, 0xC)) == 1
    assert kernel.occupancy() == 1


def test_kernel_resident_keys_decode_spaces():
    config = CacheConfig(
        size_bytes=64, line_bytes=16, associativity=2,
        indexing=Indexing.VIRTUAL,
    )
    kernel = GroupedSetKernel(config)
    kernel.simulate_chunk(_addrs(0x100), space=3)
    assert kernel.resident_keys() == {(3, 0x100)}
    assert len(kernel) == 1


def test_kernel_matches_reference_across_chunk_boundaries():
    """State carries over between chunks exactly as the reference's."""
    config = CacheConfig(size_bytes=128, line_bytes=16, associativity=4)
    kernel = GroupedSetKernel(config, "lru")
    reference = SetAssociativeCache(config, make_policy("lru"))
    rng = np.random.default_rng(5)
    for size in (1, 7, 64, 255, 3):
        addrs = (rng.integers(0, 64, size=size) * 4).astype(np.int64)
        expected = 0
        for addr in addrs.tolist():
            hit, _ = reference.access(0, addr)
            expected += not hit
        assert kernel.simulate_chunk(addrs) == expected
    assert kernel.resident_keys() == reference.resident_keys()
