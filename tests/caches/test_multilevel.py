"""Split and two-level hierarchies."""

import pytest

from repro._types import Indexing
from repro.caches.config import CacheConfig
from repro.caches.multilevel import SplitCache, TwoLevelCache
from repro.errors import ConfigError


def test_split_cache_separates_streams():
    split = SplitCache(
        CacheConfig(size_bytes=64, line_bytes=16),
        CacheConfig(size_bytes=64, line_bytes=16),
    )
    split.access(1, 0x100, is_instruction=True)
    hit, _ = split.access(1, 0x100, is_instruction=False)
    assert not hit  # the D-side never saw it
    hit, _ = split.access(1, 0x100, is_instruction=True)
    assert hit


@pytest.fixture
def two_level():
    return TwoLevelCache(
        CacheConfig(size_bytes=64, line_bytes=16),
        CacheConfig(size_bytes=256, line_bytes=16),
    )


def test_l1_miss_l2_hit_path(two_level):
    two_level.access(1, 0x000)
    two_level.access(1, 0x040)  # evicts 0x000 from L1 (4 sets), stays in L2
    outcome = two_level.access(1, 0x000)
    assert not outcome.l1_hit
    assert outcome.l2_hit
    assert two_level.l1_misses == 3
    assert two_level.l2_misses == 2


def test_l1_hit_touches_nothing(two_level):
    two_level.access(1, 0x000)
    outcome = two_level.access(1, 0x004)
    assert outcome.l1_hit and outcome.l2_hit
    assert outcome.displaced_from_l1 == []


def test_inclusion_maintained_under_pressure(two_level):
    for addr in range(0, 0x1000, 16):
        two_level.access(1, addr)
    assert two_level.check_inclusion()


def test_l2_eviction_invalidates_l1(two_level):
    # fill L2 (16 lines, direct-mapped) so a new line evicts an L2 set
    two_level.access(1, 0x000)
    outcome = two_level.access(1, 0x100)  # same L2 set as 0x000 (16 sets)
    assert (0, 0x000) in outcome.displaced_from_l1 or not two_level.l1.contains(1, 0x000)
    assert two_level.check_inclusion()


def test_miss_insert_counts_both_levels(two_level):
    outcome = two_level.miss_insert(1, 0x200)
    assert not outcome.l1_hit and not outcome.l2_hit
    assert two_level.l1_misses == 1
    assert two_level.l2_misses == 1


@pytest.mark.parametrize("l1_kwargs,l2_kwargs", [
    ({"line_bytes": 16}, {"line_bytes": 32}),
    ({"size_bytes": 256}, {"size_bytes": 64}),
    ({"indexing": Indexing.VIRTUAL}, {"indexing": Indexing.PHYSICAL}),
])
def test_mismatched_hierarchies_rejected(l1_kwargs, l2_kwargs):
    l1 = {"size_bytes": 64, "line_bytes": 16}
    l2 = {"size_bytes": 256, "line_bytes": 16}
    l1.update(l1_kwargs)
    l2.update(l2_kwargs)
    with pytest.raises(ConfigError):
        TwoLevelCache(CacheConfig(**l1), CacheConfig(**l2))
