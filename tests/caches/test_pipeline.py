"""The kernel pass pipeline: requests, capabilities, registry, ledger.

The pipeline's contract has three parts.  *Selection*: every request is
routed to exactly one kernel path, with machine-readable reasons when
the general path wins.  *Caching*: the registry compiles a given
request once per process and serves every later construction from a
dict probe, with counters and delta-published metrics that stay
per-run.  *Persistence*: when a ledger is attached, each compile
appends one crash-consistent JSONL record that ``repro kernels
stats|clear`` reads back in any process.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro._types import Indexing
from repro.caches.config import CacheConfig, TLBConfig
from repro.caches.pipeline import (
    KERNEL_CODE_VERSION,
    KernelRegistry,
    PIPELINE_PASSES,
    analyze,
    cache_request,
    clear_ledger,
    compile_kernel,
    fingerprint_request,
    read_ledger,
    run_pipeline,
    scan_request,
    sweep_request,
    tlb_request,
)
from repro.caches.replacement import make_policy
from repro.errors import ConfigError
from repro.telemetry.registry import MetricsRegistry

CFG = CacheConfig(size_bytes=1024, line_bytes=16, associativity=2)
DM = CacheConfig(size_bytes=1024, line_bytes=16)


# ---------------------------------------------------------------------------
# capability analysis
# ---------------------------------------------------------------------------

class TestCapabilities:
    def test_direct_mapped_selects_dm(self):
        report = analyze(cache_request(DM))
        assert report.selected == "dm" and not report.general

    @pytest.mark.parametrize("policy", ("lru", "fifo"))
    def test_groupable_policies_select_grouped(self, policy):
        report = analyze(cache_request(CFG, make_policy(policy)))
        assert report.selected == "grouped"

    def test_random_policy_selects_general_with_reason(self):
        report = analyze(cache_request(CFG, make_policy("random")))
        assert report.selected == "general"
        assert report.reasons == ("policy:random",)

    def test_forced_general_records_both_reasons(self):
        report = analyze(
            cache_request(CFG, make_policy("random"), force_general=True)
        )
        assert report.general
        assert "forced:request" in report.reasons
        assert "policy:random" in report.reasons

    def test_tlb_routes_mirror_cache_routes(self):
        config = TLBConfig(n_entries=16)
        assert analyze(tlb_request(config)).selected == "tlb_grouped"
        assert (
            analyze(tlb_request(config, make_policy("random"))).selected
            == "tlb_general"
        )

    def test_scan_and_sweep_have_single_paths(self):
        assert analyze(sweep_request((DM,))).selected == "grid"
        assert (
            analyze(scan_request(True, False, False, 4)).selected == "scan"
        )


# ---------------------------------------------------------------------------
# requests and fingerprints
# ---------------------------------------------------------------------------

class TestFingerprints:
    def test_equal_requests_share_a_fingerprint(self):
        a = cache_request(CacheConfig(size_bytes=1024, line_bytes=16))
        b = cache_request(CacheConfig(size_bytes=1024, line_bytes=16))
        assert a == b
        assert fingerprint_request(a) == fingerprint_request(b)

    def test_every_knob_perturbs_the_fingerprint(self):
        base = cache_request(CFG)
        variants = [
            cache_request(CacheConfig(size_bytes=2048, line_bytes=16,
                                      associativity=2)),
            cache_request(CacheConfig(size_bytes=1024, line_bytes=16,
                                      associativity=2,
                                      indexing=Indexing.VIRTUAL)),
            cache_request(CFG, make_policy("fifo")),
            cache_request(CFG, force_general=True),
            cache_request(CFG, profile=True),
        ]
        prints = {fingerprint_request(r) for r in [base, *variants]}
        assert len(prints) == len(variants) + 1

    def test_fingerprint_is_salted_with_the_code_version(self):
        # the salt is baked into the hash: same request, same print,
        # and the version constant is pinned so a bump is a loud diff
        assert KERNEL_CODE_VERSION == "repro-kernels-pipeline-v2"

    def test_dm_sweep_rejects_associative_members(self):
        with pytest.raises(ConfigError):
            run_pipeline(sweep_request((CFG,)))

    def test_grid_rejects_non_lru_policies(self):
        from repro.caches.config import GridConfig
        from repro.caches.pipeline import grid_request

        grid = GridConfig((16, 32), (1, 2))
        with pytest.raises(ConfigError):
            run_pipeline(grid_request(grid, make_policy("fifo")))
        with pytest.raises(ConfigError):
            run_pipeline(grid_request(grid, make_policy("random")))
        assert run_pipeline(grid_request(grid)).extract is not None

    def test_unknown_policy_is_rejected_at_normalize(self):
        import dataclasses

        bad = dataclasses.replace(cache_request(CFG), policy="clairvoyant")
        with pytest.raises(ConfigError):
            run_pipeline(bad)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_compile_once_then_dict_probe(self):
        registry = KernelRegistry()
        request = cache_request(CFG)
        first = registry.get(request)
        second = registry.get(cache_request(CFG))
        assert first is second
        assert registry.compiles == 1
        assert registry.hits == 1 and registry.misses == 1
        assert len(registry) == 1

    def test_distinct_requests_compile_distinct_programs(self):
        registry = KernelRegistry()
        registry.get(cache_request(CFG))
        registry.get(cache_request(DM))
        registry.get(tlb_request(TLBConfig(n_entries=8)))
        assert registry.compiles == 3 and len(registry) == 3

    def test_counters_view(self):
        registry = KernelRegistry()
        registry.get(cache_request(CFG))
        registry.get(cache_request(CFG))
        counters = registry.counters()
        assert counters["programs"] == 1
        assert counters["compiles"] == 1
        assert counters["lookup_hits"] == 1
        assert counters["lookup_misses"] == 1
        assert counters["compile_secs"] >= 0.0

    def test_pass_timings_cover_the_whole_pipeline(self):
        registry = KernelRegistry()
        program = registry.get(cache_request(CFG))
        assert set(program.pass_secs) == {p.name for p in PIPELINE_PASSES}

    def test_publish_metrics_is_delta_based(self):
        registry = KernelRegistry()
        registry.get(cache_request(CFG))
        registry.get(cache_request(CFG))

        first = MetricsRegistry()
        registry.publish_metrics(first)
        snapshot = first.snapshot()
        assert snapshot["kernels.pipeline.compiles"] == 1
        assert snapshot["kernels.pipeline.lookups{hit=true}"] == 1
        assert snapshot["kernels.pipeline.lookups{hit=false}"] == 1

        # nothing new happened: a second session sees nothing
        second = MetricsRegistry()
        registry.publish_metrics(second)
        assert len(second) == 0

        # one more hit: only the delta shows up
        registry.get(cache_request(CFG))
        third = MetricsRegistry()
        registry.publish_metrics(third)
        assert third.snapshot() == {"kernels.pipeline.lookups{hit=true}": 1}

    def test_publish_metrics_includes_per_pass_histograms(self):
        registry = KernelRegistry()
        registry.get(cache_request(CFG))
        metrics = MetricsRegistry()
        registry.publish_metrics(metrics)
        key = "kernels.pipeline.compose_secs{pass_name=compose}"
        assert key in metrics
        from repro.telemetry.profile import PROFILE_BUCKET_SECS

        assert metrics.histogram(
            "kernels.pipeline.compose_secs",
            bounds=PROFILE_BUCKET_SECS,
            pass_name="compose",
        ).count == 1

    def test_clear_drops_programs_but_keeps_history(self):
        registry = KernelRegistry()
        registry.get(cache_request(CFG))
        assert registry.clear() == 1
        assert len(registry) == 0
        assert registry.compiles == 1  # lifetime counter survives


# ---------------------------------------------------------------------------
# the compile ledger
# ---------------------------------------------------------------------------

class TestLedger:
    def test_attached_ledger_records_each_compile(self, tmp_path):
        registry = KernelRegistry(ledger_dir=tmp_path)
        program = registry.get(cache_request(CFG))
        registry.get(cache_request(CFG))  # hit: no new record
        records = read_ledger(tmp_path)
        assert len(records) == 1
        (record,) = records
        assert record["fingerprint"] == program.fingerprint
        assert record["kind"] == "cache"
        assert record["selected"] == "grouped"
        assert record["policy"] == "lru"

    def test_unattached_registry_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        registry = KernelRegistry()
        registry.get(cache_request(CFG))
        assert list(tmp_path.iterdir()) == []

    def test_read_ledger_skips_torn_tail(self, tmp_path):
        registry = KernelRegistry(ledger_dir=tmp_path)
        registry.get(cache_request(CFG))
        with open(registry.ledger_path, "a") as handle:
            handle.write('{"kind": "cach')  # a torn write
        assert len(read_ledger(tmp_path)) == 1

    def test_clear_ledger_reports_and_removes(self, tmp_path):
        registry = KernelRegistry(ledger_dir=tmp_path)
        registry.get(cache_request(CFG))
        registry.get(cache_request(DM))
        assert clear_ledger(tmp_path) == 2
        assert read_ledger(tmp_path) == []
        assert clear_ledger(tmp_path) == 0


# ---------------------------------------------------------------------------
# compiled programs behave like kernels
# ---------------------------------------------------------------------------

class TestPrograms:
    def test_cache_program_runs_standalone(self):
        program = compile_kernel(cache_request(DM), KernelRegistry())
        state = program.make_state(make_policy("lru"))
        addrs = np.asarray([0x00, 0x40, 0x00, 0x40], dtype=np.int64)
        assert program.run(state, addrs, 0) == 2
        assert program.occupancy(state) == 2

    def test_scan_program_with_no_mechanisms_is_a_no_op(self):
        program = compile_kernel(
            scan_request(False, False, False, 4), KernelRegistry()
        )
        assert program.collect is None

    def test_scan_program_flags_match_the_request(self):
        program = compile_kernel(
            scan_request(True, True, False, 4), KernelRegistry()
        )
        assert program.use_ecc and program.use_pages
        assert not program.use_breakpoints
        granules = program.granules_of(
            np.asarray([0x10, 0x20], dtype=np.int64)
        )
        assert granules.tolist() == [1, 2]


# ---------------------------------------------------------------------------
# the CLI round-trip
# ---------------------------------------------------------------------------

class TestCLI:
    def test_kernels_stats_json_reads_the_ledger(self, tmp_path, capsys):
        from repro.cli import main

        registry = KernelRegistry(ledger_dir=tmp_path / "ledger")
        registry.get(cache_request(CFG))
        registry.get(cache_request(CFG, force_general=True))
        code = main(
            ["kernels", "stats", "--ledger-dir", str(tmp_path / "ledger"),
             "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ledger_compiles"] == 2
        assert payload["per_kind"] == {"cache": 2}
        assert payload["per_path"] == {"grouped": 1, "general": 1}
        assert payload["forced_general"] == 1

    def test_kernels_clear_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        registry = KernelRegistry(ledger_dir=tmp_path / "ledger")
        registry.get(cache_request(CFG))
        assert main(
            ["kernels", "clear", "--ledger-dir", str(tmp_path / "ledger")]
        ) == 0
        assert "dropped 1 compile record(s)" in capsys.readouterr().out
        assert read_ledger(tmp_path / "ledger") == []
