"""Replacement policy behavior."""

import pytest

from repro.caches.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.errors import ConfigError


class TestLRU:
    def test_touch_moves_to_front(self):
        policy = LRUPolicy()
        entries = ["a", "b", "c"]
        policy.touch(entries, 2)
        assert entries == ["c", "a", "b"]

    def test_victim_is_back(self):
        policy = LRUPolicy()
        assert policy.victim_index(["a", "b", "c"]) == 2

    def test_insert_at_front(self):
        policy = LRUPolicy()
        entries = ["a"]
        policy.insert(entries, "b")
        assert entries == ["b", "a"]


class TestFIFO:
    def test_touch_does_not_reorder(self):
        policy = FIFOPolicy()
        entries = ["a", "b", "c"]
        policy.touch(entries, 2)
        assert entries == ["a", "b", "c"]

    def test_victim_is_oldest(self):
        policy = FIFOPolicy()
        entries = []
        for key in "abc":
            policy.insert(entries, key)
        assert entries[policy.victim_index(entries)] == "a"


class TestRandom:
    def test_deterministic_for_seed(self):
        a = RandomPolicy(seed=7)
        b = RandomPolicy(seed=7)
        entries = list("abcdefgh")
        picks_a = [a.victim_index(entries) for _ in range(20)]
        picks_b = [b.victim_index(entries) for _ in range(20)]
        assert picks_a == picks_b

    def test_victims_span_the_set(self):
        policy = RandomPolicy(seed=3)
        entries = list("abcd")
        picks = {policy.victim_index(entries) for _ in range(100)}
        assert picks == {0, 1, 2, 3}


def test_make_policy_by_name():
    assert isinstance(make_policy("lru"), LRUPolicy)
    assert isinstance(make_policy("fifo"), FIFOPolicy)
    assert isinstance(make_policy("random", seed=1), RandomPolicy)
    with pytest.raises(ConfigError):
        make_policy("plru")
