"""Single-pass stack simulation and miss accounting."""

import numpy as np
import pytest

from repro._types import Component
from repro.caches.stack import StackSimulator
from repro.caches.stats import CacheStats


class TestStackSimulator:
    def test_cold_misses_counted(self):
        sim = StackSimulator(line_bytes=16)
        sim.process(np.array([0, 16, 32], dtype=np.int64))
        assert sim.distances[StackSimulator.COLD] == 3
        assert sim.footprint_lines() == 3

    def test_stack_distance_recorded(self):
        sim = StackSimulator(line_bytes=16)
        # lines: a b c a  -> distance of final a is 2
        sim.process(np.array([0, 16, 32, 0], dtype=np.int64))
        assert sim.distances[2] == 1

    def test_miss_ratio_monotone_in_capacity(self):
        rng = np.random.default_rng(0)
        addrs = (rng.integers(0, 256, size=4000) * 16).astype(np.int64)
        sim = StackSimulator(line_bytes=16)
        sim.process(addrs)
        ratios = [sim.miss_ratio(c) for c in (1, 4, 16, 64, 256)]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_inclusion_property_vs_direct_simulation(self):
        """Mattson: one pass predicts every fully-assoc LRU size."""
        from repro.caches.cache import SetAssociativeCache
        from repro.caches.config import CacheConfig

        rng = np.random.default_rng(1)
        addrs = (rng.integers(0, 64, size=2000) * 16).astype(np.int64)
        sim = StackSimulator(line_bytes=16)
        sim.process(addrs)
        for lines in (4, 16, 64):
            cache = SetAssociativeCache(
                CacheConfig(
                    size_bytes=lines * 16, line_bytes=16, associativity=lines
                )
            )
            misses = sum(
                0 if cache.access(0, int(a))[0] else 1 for a in addrs
            )
            assert sim.miss_ratio(lines) == pytest.approx(misses / len(addrs))

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            StackSimulator(line_bytes=24)

    def test_miss_curve(self):
        sim = StackSimulator()
        sim.process(np.array([0, 0, 16], dtype=np.int64))
        curve = sim.miss_curve([1, 2])
        assert set(curve) == {1, 2}


class TestCacheStats:
    def test_totals_and_ratios(self):
        stats = CacheStats()
        stats.count_refs(Component.USER, 1000)
        stats.count_refs(Component.KERNEL, 1000)
        stats.count_miss(Component.USER, 100)
        stats.count_miss(Component.KERNEL, 20)
        assert stats.total_misses == 120
        assert stats.total_refs == 2000
        assert stats.miss_ratio() == pytest.approx(0.06)
        # component ratios sum to the total ratio (Table 6 convention)
        total = sum(stats.miss_ratio(c) for c in Component)
        assert total == pytest.approx(stats.miss_ratio())
        assert stats.local_miss_ratio(Component.USER) == pytest.approx(0.1)

    def test_zero_refs_ratio_is_zero(self):
        assert CacheStats().miss_ratio() == 0.0
        assert CacheStats().local_miss_ratio(Component.USER) == 0.0

    def test_merge(self):
        a, b = CacheStats(), CacheStats()
        a.count_miss(Component.USER, 5)
        b.count_miss(Component.USER, 7)
        b.masked_misses = 2
        a.merge(b)
        assert a.misses[Component.USER] == 12
        assert a.masked_misses == 2

    def test_scaled_misses(self):
        stats = CacheStats()
        stats.count_miss(Component.KERNEL, 3)
        scaled = stats.scaled_misses(100.0)
        assert scaled[Component.KERNEL] == 300.0
