"""The simulated TLB model."""

import pytest

from repro.caches.config import TLBConfig
from repro.caches.tlb import SimulatedTLB


def test_access_miss_then_hit():
    tlb = SimulatedTLB(TLBConfig(n_entries=4))
    hit, displaced = tlb.access(1, 100)
    assert not hit and displaced is None
    hit, _ = tlb.access(1, 100)
    assert hit


def test_fully_associative_lru_displacement():
    tlb = SimulatedTLB(TLBConfig(n_entries=2))
    tlb.access(1, 10)
    tlb.access(1, 20)
    tlb.access(1, 10)  # refresh
    _, displaced = tlb.access(1, 30)
    assert displaced == (1, 20)


def test_miss_insert_skips_search():
    tlb = SimulatedTLB(TLBConfig(n_entries=2))
    displaced = tlb.miss_insert(1, 10)
    assert displaced is None
    assert tlb.searches == 0
    tlb.miss_insert(1, 20)
    displaced = tlb.miss_insert(1, 30)
    assert displaced == (1, 10)


def test_superpage_collapsing():
    config = TLBConfig(n_entries=4, page_bytes=16384)  # 4 machine pages
    tlb = SimulatedTLB(config)
    tlb.miss_insert(1, 0)
    # machine pages 0..3 share one entry
    assert tlb.contains(1, 3)
    assert not tlb.contains(1, 4)
    assert list(tlb.machine_pages_of((1, 0))) == [0, 1, 2, 3]


def test_entries_are_per_task():
    tlb = SimulatedTLB(TLBConfig(n_entries=4))
    tlb.miss_insert(1, 10)
    assert not tlb.contains(2, 10)


def test_set_associative_indexing():
    config = TLBConfig(n_entries=4, associativity=1)  # 4 direct-mapped sets
    tlb = SimulatedTLB(config)
    tlb.miss_insert(1, 0)
    displaced = tlb.miss_insert(1, 4)  # same set (4 sets)
    assert displaced == (1, 0)
    displaced = tlb.miss_insert(1, 1)  # different set
    assert displaced is None


def test_flush_task():
    tlb = SimulatedTLB(TLBConfig(n_entries=8))
    tlb.miss_insert(1, 10)
    tlb.miss_insert(2, 20)
    removed = tlb.flush_task(1)
    assert removed == [(1, 10)]
    assert tlb.resident_keys() == {(2, 20)}
    assert len(tlb) == 1


def test_evict():
    tlb = SimulatedTLB(TLBConfig(n_entries=4))
    tlb.miss_insert(1, 10)
    assert tlb.evict(1, 10)
    assert not tlb.evict(1, 10)
