"""Shared fixtures: small machines, kernels and configurations."""

from __future__ import annotations

import pytest

from repro.caches.config import CacheConfig, TLBConfig
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


@pytest.fixture
def small_machine() -> Machine:
    """A 4 MB machine — big enough for any unit test, fast to build."""
    return Machine(MachineConfig(memory_bytes=4 * 1024 * 1024, n_vpages=2048))


@pytest.fixture
def kernel() -> Kernel:
    """A booted kernel on a small machine with deterministic allocation."""
    machine = Machine(
        MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=2048)
    )
    return Kernel(machine=machine, alloc_policy="sequential", trial_seed=0)


@pytest.fixture
def cache_4k() -> CacheConfig:
    return CacheConfig(size_bytes=4096)


@pytest.fixture
def tlb_64() -> TLBConfig:
    return TLBConfig(n_entries=64)
