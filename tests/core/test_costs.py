"""The Table 5 cycle model."""

import pytest

from repro.caches.config import CacheConfig, TLBConfig
from repro.core.costs import (
    HandlerCostModel,
    OPTIMIZED_HANDLER_CYCLES,
    UNOPTIMIZED_HANDLER_CYCLES,
)
from repro.errors import ConfigError


def test_canonical_config_costs_246_cycles():
    """Table 5's bottom line for DM caches with 4-word lines."""
    model = HandlerCostModel()
    assert model.cycles_per_cache_miss(CacheConfig(size_bytes=4096)) == 246


def test_cache_size_does_not_change_cost():
    model = HandlerCostModel()
    costs = {
        model.cycles_per_cache_miss(CacheConfig(size_bytes=kb * 1024))
        for kb in (1, 4, 64, 1024)
    }
    assert costs == {246}


def test_associativity_increases_tw_replace_cost():
    model = HandlerCostModel()
    dm = model.cycles_per_cache_miss(CacheConfig(size_bytes=4096))
    four_way = model.cycles_per_cache_miss(
        CacheConfig(size_bytes=4096, associativity=4)
    )
    assert four_way > dm
    assert four_way - dm < 50  # "slightly increase"


def test_line_size_increases_trap_cost():
    model = HandlerCostModel()
    short = model.cycles_per_cache_miss(CacheConfig(size_bytes=4096))
    long = model.cycles_per_cache_miss(
        CacheConfig(size_bytes=4096, line_bytes=64)
    )
    assert long > short


def test_sub_granule_lines_rejected():
    model = HandlerCostModel()
    with pytest.raises(ConfigError):
        model.cycles_per_cache_miss(CacheConfig(size_bytes=4096, line_bytes=8))


def test_unoptimized_handler_is_paper_ratio():
    optimized = HandlerCostModel("optimized")
    unoptimized = HandlerCostModel("unoptimized")
    config = CacheConfig(size_bytes=4096)
    ratio = unoptimized.cycles_per_cache_miss(config) / (
        optimized.cycles_per_cache_miss(config)
    )
    assert ratio == pytest.approx(
        UNOPTIMIZED_HANDLER_CYCLES / OPTIMIZED_HANDLER_CYCLES, rel=0.01
    )


def test_hardware_assisted_is_about_5x_faster():
    """Section 4.3: a cleaner ASIC interface would give 'another factor
    of 5'."""
    model = HandlerCostModel("hardware_assisted")
    cost = model.cycles_per_cache_miss(CacheConfig(size_bytes=4096))
    assert cost == pytest.approx(246 / 5, rel=0.05)


def test_unknown_variant_rejected():
    with pytest.raises(ConfigError):
        HandlerCostModel("quantum")


def test_breakdown_rows_sum_to_total():
    model = HandlerCostModel()
    config = CacheConfig(size_bytes=4096)
    breakdown = model.breakdown(config)
    rows = breakdown.rows()
    assert len(rows) == 5
    assert sum(cycles for _, cycles in rows) == pytest.approx(
        model.cycles_per_cache_miss(config), abs=3
    )
    assert rows[0][0] == "kernel trap and return"


def test_tlb_miss_cost_is_cheaper_than_cache_miss():
    model = HandlerCostModel()
    tlb_cost = model.cycles_per_tlb_miss(TLBConfig(n_entries=64))
    assert tlb_cost < 246


def test_superpage_tlb_cost_grows_with_coverage():
    model = HandlerCostModel()
    base = model.cycles_per_tlb_miss(TLBConfig(n_entries=64))
    superpage = model.cycles_per_tlb_miss(
        TLBConfig(n_entries=64, page_bytes=64 * 1024)
    )
    assert superpage > base
