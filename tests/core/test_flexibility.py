"""Section 4.4 flexibility limits."""

import pytest

from repro.caches.config import CacheConfig
from repro.core.flexibility import StructureKind, assert_trap_simulable
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.errors import UnsupportedStructure
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


def _machine(allocate_on_write=False):
    return Machine(
        MachineConfig(
            memory_bytes=4 * 1024 * 1024,
            n_vpages=512,
            allocate_on_write=allocate_on_write,
        )
    )


@pytest.mark.parametrize(
    "kind",
    [StructureKind.WRITE_BUFFER, StructureKind.INSTRUCTION_PIPELINE],
)
def test_inherently_unsimulable_structures_rejected(kind):
    """Write buffers and pipelines cannot be modeled by traps on any
    machine."""
    with pytest.raises(UnsupportedStructure):
        assert_trap_simulable(kind, _machine())
    with pytest.raises(UnsupportedStructure):
        assert_trap_simulable(kind, _machine(allocate_on_write=True))


def test_data_cache_blocked_on_decstation_model():
    """The 5000/200's no-allocate-on-write policy clears ECC traps
    without entering the miss handler."""
    with pytest.raises(UnsupportedStructure):
        assert_trap_simulable(StructureKind.DATA_CACHE, _machine())


def test_data_cache_allowed_on_write_allocate_host():
    """On an allocate-on-write machine (the WWT's CM-5 nodes), data
    cache simulation works [Reinhardt93]."""
    assert_trap_simulable(
        StructureKind.DATA_CACHE, _machine(allocate_on_write=True)
    )
    assert_trap_simulable(
        StructureKind.UNIFIED_CACHE, _machine(allocate_on_write=True)
    )


def test_instruction_caches_and_tlbs_always_fine():
    assert_trap_simulable(StructureKind.INSTRUCTION_CACHE, _machine())
    assert_trap_simulable(StructureKind.TLB, _machine())


def test_tapeworm_install_enforces_the_check():
    kernel = Kernel(machine=_machine(), alloc_policy="sequential")
    config = TapewormConfig(
        cache=CacheConfig(size_bytes=4096),
        kind=StructureKind.DATA_CACHE,
    )
    tapeworm = Tapeworm(kernel, config)
    with pytest.raises(UnsupportedStructure):
        tapeworm.install()
    # and nothing was left half-claimed
    assert kernel.tapeworm is None
    assert kernel.vm.on_register_page is None


def test_tapeworm_data_cache_on_write_allocate_machine_installs():
    kernel = Kernel(
        machine=_machine(allocate_on_write=True), alloc_policy="sequential"
    )
    config = TapewormConfig(
        cache=CacheConfig(size_bytes=4096),
        kind=StructureKind.DATA_CACHE,
    )
    Tapeworm(kernel, config).install()
    assert kernel.tapeworm is not None
