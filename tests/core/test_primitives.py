"""tw_set_trap / tw_clear_trap over both mechanisms."""

import pytest

from repro._types import TrapMechanism
from repro.core.primitives import TrapPrimitives
from repro.errors import TapewormError, UnsupportedStructure
from repro.machine.machine import Machine, MachineConfig


@pytest.fixture
def machine():
    return Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=128))


def test_ecc_set_and_clear(machine):
    primitives = TrapPrimitives(machine, TrapMechanism.ECC)
    primitives.tw_set_trap(0x1000, 64)
    assert machine.ecc.is_trapped(0x1000)
    primitives.tw_clear_trap(0x1000, 64)
    assert not machine.ecc.is_trapped(0x1000)
    assert primitives.set_calls == 1
    assert primitives.clear_calls == 1


def test_line_size_must_match_ecc_granule(machine):
    """Section 4.4: line sizes limited to multiples of 4 words."""
    primitives = TrapPrimitives(machine, TrapMechanism.ECC)
    with pytest.raises(UnsupportedStructure):
        primitives.tw_set_trap(0x1000, 8)


def test_activate_enables_mechanism(machine):
    primitives = TrapPrimitives(machine, TrapMechanism.ECC)
    primitives.activate()
    assert TrapMechanism.ECC in machine.active_mechanisms
    primitives.deactivate()
    assert TrapMechanism.ECC not in machine.active_mechanisms


def test_page_trap_purges_hardware_tlb(machine):
    """A stale hardware translation must not shadow a valid-bit trap."""
    primitives = TrapPrimitives(machine, TrapMechanism.PAGE_VALID)
    table = machine.mmu.create_table(1)
    table.map(5, 9)
    machine.hw_tlb.insert(1, 5, 9)
    primitives.tw_set_page_trap(1, 5)
    assert table.is_page_trapped(5)
    assert machine.hw_tlb.probe(1, 5) is None
    primitives.tw_clear_page_trap(1, 5)
    assert not table.is_page_trapped(5)


def test_mechanism_mismatch_rejected(machine):
    ecc = TrapPrimitives(machine, TrapMechanism.ECC)
    with pytest.raises(TapewormError):
        ecc.tw_set_page_trap(1, 0)
    pages = TrapPrimitives(machine, TrapMechanism.PAGE_VALID)
    with pytest.raises(TapewormError):
        pages.tw_set_trap(0, 16)


def test_breakpoints_not_a_primary_mechanism(machine):
    with pytest.raises(UnsupportedStructure):
        TrapPrimitives(machine, TrapMechanism.BREAKPOINT)


def test_granule_sizes(machine):
    assert TrapPrimitives(machine, TrapMechanism.ECC).trap_granule_bytes() == 16
    assert (
        TrapPrimitives(machine, TrapMechanism.PAGE_VALID).trap_granule_bytes()
        == 4096
    )
