"""Shared-page reference counting in the page registry."""

import pytest

from repro._types import PAGE_SIZE
from repro.core.registration import PageRegistry
from repro.errors import TapewormError


def test_first_registration_reports_first():
    registry = PageRegistry()
    assert registry.register(1, 0x4000, 0x10000)
    assert registry.refcount(0x4000) == 1
    assert registry.is_registered_frame(0x4000)
    assert registry.is_registered_mapping(1, 0x10000)


def test_second_mapping_increments_only():
    """Paper: a second virtual mapping of a registered physical page sets
    no new traps, it only bumps the reference count."""
    registry = PageRegistry()
    assert registry.register(1, 0x4000, 0x10000)
    assert not registry.register(2, 0x4000, 0x20000)
    assert registry.refcount(0x4000) == 2


def test_remove_flushes_only_at_zero():
    registry = PageRegistry()
    registry.register(1, 0x4000, 0x10000)
    registry.register(2, 0x4000, 0x20000)
    assert not registry.remove(1, 0x4000, 0x10000)
    assert registry.refcount(0x4000) == 1
    assert registry.remove(2, 0x4000, 0x20000)
    assert registry.refcount(0x4000) == 0
    assert not registry.is_registered_frame(0x4000)


def test_duplicate_registration_rejected():
    registry = PageRegistry()
    registry.register(1, 0x4000, 0x10000)
    with pytest.raises(TapewormError):
        registry.register(1, 0x5000, 0x10000)


def test_remove_of_unregistered_rejected():
    registry = PageRegistry()
    with pytest.raises(TapewormError):
        registry.remove(1, 0x4000, 0x10000)


def test_pa_of_translates_offsets():
    registry = PageRegistry()
    registry.register(3, 2 * PAGE_SIZE, 7 * PAGE_SIZE)
    assert registry.pa_of(3, 7 * PAGE_SIZE + 0x123) == 2 * PAGE_SIZE + 0x123
    assert registry.pa_of(3, 8 * PAGE_SIZE) is None
    assert registry.pa_of(9, 7 * PAGE_SIZE) is None


def test_mappings_of_frame_and_task():
    registry = PageRegistry()
    registry.register(1, 0x4000, 0x10000)
    registry.register(2, 0x4000, 0x20000)
    registry.register(1, 0x5000, 0x30000)
    assert registry.mappings_of_frame(0x4000) == {(1, 0x10), (2, 0x20)}
    assert sorted(registry.mappings_of_task(1)) == [(0x10, 4), (0x30, 5)]
    assert len(registry) == 3
    assert registry.registered_frames() == {4, 5}


def test_mappings_of_task_preserves_registration_order():
    registry = PageRegistry()
    registry.register(1, 0x7000, 0x30000)
    registry.register(2, 0x4000, 0x50000)
    registry.register(1, 0x5000, 0x10000)
    assert registry.mappings_of_task(1) == [(0x30, 7), (0x10, 5)]
    registry.remove(1, 0x7000, 0x30000)
    assert registry.mappings_of_task(1) == [(0x10, 5)]
    assert registry.mappings_of_task(9) == []


def test_superpage_index_groups_vpns_per_entry():
    """A 4-page superpage: vpns 0-3 share entry 0, 4-7 entry 1."""
    registry = PageRegistry(pages_per_superpage=4)
    for vpn in (1, 3, 4, 2):
        registry.register(1, vpn * PAGE_SIZE, vpn * PAGE_SIZE)
    registry.register(2, 9 * PAGE_SIZE, 1 * PAGE_SIZE)  # other task
    assert registry.vpns_under(1, 0) == [1, 2, 3]
    assert registry.vpns_under(1, 1) == [4]
    assert registry.vpns_under(2, 0) == [1]
    assert registry.vpns_under(1, 5) == []
    registry.remove(1, 2 * PAGE_SIZE, 2 * PAGE_SIZE)
    assert registry.vpns_under(1, 0) == [1, 3]


def test_superpage_index_cleans_up_empty_entries():
    registry = PageRegistry(pages_per_superpage=2)
    registry.register(1, 0x4000, 0x10000)
    registry.remove(1, 0x4000, 0x10000)
    assert registry.vpns_under(1, (0x10000 // PAGE_SIZE) // 2) == []
    assert registry._by_superpage == {}
    assert registry._by_task == {}


def test_invalid_pages_per_superpage_rejected():
    with pytest.raises(TapewormError):
        PageRegistry(pages_per_superpage=0)
