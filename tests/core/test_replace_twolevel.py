"""tw_replace bridging and two-level trap-driven simulation."""

import numpy as np
import pytest

from repro._types import Component, Indexing, PAGE_SIZE
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.core.registration import PageRegistry
from repro.core.replace import Replacer
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


class TestReplacer:
    def test_physical_displacement_targets_registered_frames(self):
        registry = PageRegistry()
        registry.register(1, 0x0000, 0x10000)
        cache = SetAssociativeCache(CacheConfig(size_bytes=64, line_bytes=16))
        replacer = Replacer(cache, registry)
        replacer.tw_replace(1, 0x0000, 0x10000)
        outcome = replacer.tw_replace(1, 0x0040, 0x10040)
        assert outcome.trap_targets == [0x0000]

    def test_unregistered_displacement_skipped(self):
        registry = PageRegistry()
        cache = SetAssociativeCache(CacheConfig(size_bytes=64, line_bytes=16))
        replacer = Replacer(cache, registry)
        replacer.tw_replace(1, 0x0000, 0x10000)
        outcome = replacer.tw_replace(1, 0x0040, 0x10040)
        assert outcome.trap_targets == []
        assert outcome.untranslatable == 1

    def test_virtual_displacement_translated_through_registry(self):
        registry = PageRegistry()
        registry.register(1, 3 * PAGE_SIZE, 0x10000)
        config = CacheConfig(
            size_bytes=64, line_bytes=16, indexing=Indexing.VIRTUAL
        )
        replacer = Replacer(SetAssociativeCache(config), registry)
        replacer.tw_replace(1, 3 * PAGE_SIZE, 0x10000)
        outcome = replacer.tw_replace(1, 3 * PAGE_SIZE + 0x40, 0x10040)
        assert outcome.trap_targets == [3 * PAGE_SIZE]

    def test_index_address_follows_config(self):
        registry = PageRegistry()
        physical = Replacer(
            SetAssociativeCache(CacheConfig(size_bytes=64)), registry
        )
        assert physical.index_address(va=0x100, pa=0x200) == 0x200
        virtual = Replacer(
            SetAssociativeCache(
                CacheConfig(size_bytes=64, indexing=Indexing.VIRTUAL)
            ),
            registry,
        )
        assert virtual.index_address(va=0x100, pa=0x200) == 0x100


class TestTwoLevelTrapDriven:
    def _setup(self):
        machine = Machine(
            MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=512)
        )
        kernel = Kernel(machine=machine, alloc_policy="sequential")
        config = TapewormConfig(
            structure="two_level",
            cache=CacheConfig(size_bytes=64, line_bytes=16),
            l2=CacheConfig(size_bytes=1024, line_bytes=16),
        )
        tapeworm = Tapeworm(kernel, config)
        tapeworm.install()
        task = kernel.spawn("job", Component.USER)
        tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
        return kernel, tapeworm, task

    def test_l1_misses_trap_l2_hits_resolved_in_software(self):
        kernel, tapeworm, task = self._setup()
        refs = np.array([0x000, 0x040, 0x000], dtype=np.int64)
        kernel.run_chunk(task, refs)
        # all three L1 misses trap; the final one hits L2
        assert tapeworm.stats.total_misses == 3
        assert tapeworm.stats.l2_misses == 2

    def test_inclusion_invariant_held(self):
        kernel, tapeworm, task = self._setup()
        rng = np.random.default_rng(3)
        for _ in range(10):
            addrs = (rng.integers(0, 1024, size=64) * 4).astype(np.int64)
            kernel.run_chunk(task, addrs)
        assert tapeworm.structure.check_inclusion()

    def test_trap_set_is_complement_of_l1(self):
        kernel, tapeworm, task = self._setup()
        rng = np.random.default_rng(5)
        for _ in range(10):
            addrs = (rng.integers(0, 512, size=64) * 4).astype(np.int64)
            kernel.run_chunk(task, addrs)
        table = kernel.machine.mmu.table(task.tid)
        l1 = tapeworm.structure.l1
        for vpn in table.mapped_vpns():
            pa_page = table.frame_of(int(vpn)) * PAGE_SIZE
            for offset in range(0, PAGE_SIZE, 16):
                trapped = kernel.machine.ecc.is_trapped(pa_page + offset)
                assert trapped != l1.contains(task.tid, pa_page + offset)
