"""Set sampling: selection, estimation, seeding."""

import numpy as np
import pytest

from repro.core.sampling import SetSampler
from repro.errors import ConfigError


def test_no_sampling_covers_everything():
    sampler = SetSampler(n_sets=256)
    assert not sampler.is_sampling
    assert sampler.expansion_factor == 1
    assert all(sampler.covers_set(i) for i in range(256))


def test_fraction_selects_exact_subset():
    sampler = SetSampler(n_sets=256, fraction_denominator=8, seed=1)
    assert sampler.is_sampling
    assert len(sampler.sampled_sets()) == 32
    assert sampler.expansion_factor == 8


def test_different_seeds_give_different_samples():
    """Paper: 'different samples can be obtained simply by changing the
    pattern of traps.'"""
    a = SetSampler(256, 8, seed=1).sampled_sets()
    b = SetSampler(256, 8, seed=2).sampled_sets()
    assert a.tolist() != b.tolist()


def test_same_seed_reproduces():
    a = SetSampler(256, 4, seed=9).sampled_sets()
    b = SetSampler(256, 4, seed=9).sampled_sets()
    assert a.tolist() == b.tolist()


def test_mask_for_sets_matches_covers():
    sampler = SetSampler(64, 4, seed=3)
    indices = np.arange(64)
    mask = sampler.mask_for_sets(indices)
    assert mask.tolist() == [sampler.covers_set(i) for i in range(64)]


def test_estimate_scales():
    sampler = SetSampler(64, 8, seed=0)
    assert sampler.estimate(100) == 800


@pytest.mark.parametrize("n_sets,denominator", [(4, 8), (64, 0)])
def test_bad_fractions_rejected(n_sets, denominator):
    with pytest.raises(ConfigError):
        SetSampler(n_sets, denominator)
