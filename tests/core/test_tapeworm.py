"""The Tapeworm simulator end to end on a booted kernel."""

import numpy as np
import pytest

from repro._types import Component, Indexing, PAGE_SIZE
from repro.caches.config import CacheConfig, TLBConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.errors import ConfigError, TapewormError
from repro.kernel.kernel import Kernel
from repro.kernel.vm import AddressSpaceLayout, Region
from repro.machine.machine import Machine, MachineConfig


def _kernel():
    machine = Machine(
        MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=1024)
    )
    return Kernel(machine=machine, alloc_policy="sequential", trial_seed=0)


def _install(kernel, **kwargs):
    kwargs.setdefault("cache", CacheConfig(size_bytes=1024))
    tapeworm = Tapeworm(kernel, TapewormConfig(**kwargs))
    tapeworm.install()
    return tapeworm


def _simulated_task(kernel, tapeworm, name="job"):
    task = kernel.spawn(name, Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    return task


def _refs(*addresses):
    return np.array(addresses, dtype=np.int64)


SEQ_4K = np.arange(0, 4096, 4, dtype=np.int64)


class TestInstall:
    def test_install_claims_hooks(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        assert kernel.tapeworm is tapeworm
        assert kernel.vm.on_register_page is not None
        with pytest.raises(TapewormError):
            tapeworm.install()

    def test_second_instance_rejected(self):
        kernel = _kernel()
        _install(kernel)
        other = Tapeworm(
            kernel, TapewormConfig(cache=CacheConfig(size_bytes=1024))
        )
        with pytest.raises(TapewormError):
            other.install()

    def test_uninstall_releases_everything(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        tapeworm.uninstall()
        assert kernel.tapeworm is None
        assert kernel.vm.on_register_page is None
        _install(kernel)  # can install again

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            TapewormConfig(structure="victim_cache")
        with pytest.raises(ConfigError):
            TapewormConfig(structure="tlb")
        with pytest.raises(ConfigError):
            TapewormConfig(structure="two_level", cache=CacheConfig(size_bytes=1024))


class TestMissCounting:
    def test_compulsory_misses_equal_lines_touched(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:256])  # 1024 bytes = 64 lines
        assert tapeworm.stats.misses[Component.USER] == 64

    def test_rereferences_run_free(self):
        kernel = _kernel()
        tapeworm = _install(kernel, cache=CacheConfig(size_bytes=4096))
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K)
        first = tapeworm.stats.total_misses
        kernel.run_chunk(task, SEQ_4K)  # fits the 4 KB cache entirely
        assert tapeworm.stats.total_misses == first

    def test_conflict_misses_trap_again(self):
        kernel = _kernel()
        tapeworm = _install(kernel, cache=CacheConfig(size_bytes=64))
        task = _simulated_task(kernel, tapeworm)
        # two lines mapping the same set of the 4-set cache
        kernel.run_chunk(task, _refs(0x000, 0x040, 0x000, 0x040))
        assert tapeworm.stats.total_misses == 4

    def test_unsimulated_task_never_misses(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = kernel.spawn("bystander", Component.USER)
        kernel.run_chunk(task, SEQ_4K)
        assert tapeworm.stats.total_misses == 0
        assert len(tapeworm.registry) == 0

    def test_misses_attributed_to_component(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        tapeworm.tw_attributes(0, simulate=1, inherit=0)  # the kernel
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:64])
        kernel_task = kernel.tasks.get(0)
        kernel.run_chunk(kernel_task, SEQ_4K[:64])
        assert tapeworm.stats.misses[Component.USER] == 16
        assert tapeworm.stats.misses[Component.KERNEL] == 16

    def test_overhead_cycles_track_misses(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:128])
        assert tapeworm.overhead_cycles == tapeworm.stats.total_misses * 246


class TestTrapStateInvariant:
    def test_traps_complement_cache_contents(self):
        """The core invariant: a registered location is trapped iff its
        line is absent from the simulated cache."""
        kernel = _kernel()
        tapeworm = _install(kernel, cache=CacheConfig(size_bytes=256))
        task = _simulated_task(kernel, tapeworm)
        rng = np.random.default_rng(7)
        for _ in range(20):
            addrs = (rng.integers(0, 512, size=64) * 4).astype(np.int64)
            kernel.run_chunk(task, addrs)
        table = kernel.machine.mmu.table(task.tid)
        cache = tapeworm.structure
        for vpn in table.mapped_vpns():
            pa_page = table.frame_of(int(vpn)) * PAGE_SIZE
            for offset in range(0, PAGE_SIZE, 16):
                trapped = kernel.machine.ecc.is_trapped(pa_page + offset)
                cached = cache.contains(task.tid, pa_page + offset)
                assert trapped != cached, (
                    f"offset {offset:#x}: trapped={trapped} cached={cached}"
                )


class TestAttributes:
    def test_attribute_flip_registers_existing_pages(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = kernel.spawn("late", Component.USER)
        kernel.run_chunk(task, SEQ_4K[:64])  # maps a page, unregistered
        assert tapeworm.stats.total_misses == 0
        tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
        assert len(tapeworm.registry) == 1
        kernel.run_chunk(task, SEQ_4K[:64])
        assert tapeworm.stats.total_misses == 16

    def test_attribute_clear_removes_pages(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:64])
        tapeworm.tw_attributes(task.tid, simulate=0, inherit=0)
        assert len(tapeworm.registry) == 0
        before = tapeworm.stats.total_misses
        kernel.run_chunk(task, SEQ_4K)
        assert tapeworm.stats.total_misses == before

    def test_fork_tree_measured_through_shell(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        shell = kernel.spawn("shell", Component.USER)
        tapeworm.tw_attributes(shell.tid, simulate=0, inherit=1)
        child = kernel.fork(shell.tid, "workload")
        grandchild = kernel.fork(child.tid, "helper")
        kernel.run_chunk(shell, SEQ_4K[:64])
        assert tapeworm.stats.total_misses == 0  # shell excluded
        kernel.run_chunk(child, SEQ_4K[:64])
        kernel.run_chunk(grandchild, SEQ_4K[64:128])
        assert tapeworm.stats.total_misses == 32


class TestSharedPages:
    LAYOUT = AddressSpaceLayout(
        regions=(Region(name="text", start_vpn=0, n_pages=1, share_key="sh"),)
    )

    def test_second_task_benefits_from_shared_lines(self):
        """Paper: a new task benefits from shared entries brought into
        the cache by another task — no new traps on re-registration."""
        kernel = _kernel()
        tapeworm = _install(kernel, cache=CacheConfig(size_bytes=4096))
        a = kernel.spawn("a", Component.USER, layout=self.LAYOUT)
        b = kernel.spawn("b", Component.USER, layout=self.LAYOUT)
        for task in (a, b):
            tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
        kernel.run_chunk(a, SEQ_4K[:256])
        first = tapeworm.stats.total_misses
        kernel.run_chunk(b, SEQ_4K[:256])  # same physical lines
        assert tapeworm.stats.total_misses == first

    def test_flush_waits_for_last_unmap(self):
        kernel = _kernel()
        tapeworm = _install(kernel, cache=CacheConfig(size_bytes=4096))
        a = kernel.spawn("a", Component.USER, layout=self.LAYOUT)
        b = kernel.spawn("b", Component.USER, layout=self.LAYOUT)
        for task in (a, b):
            tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
        kernel.run_chunk(a, SEQ_4K[:64])
        kernel.run_chunk(b, SEQ_4K[:64])
        kernel.exit_task(a.tid)
        # b still maps the frame: cache keeps the lines
        assert tapeworm.structure.occupancy() == 16
        kernel.exit_task(b.tid)
        assert tapeworm.structure.occupancy() == 0


class TestPageRemoval:
    def test_task_exit_clears_traps_and_cache(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:64])
        table = kernel.machine.mmu.table(task.tid)
        frame = table.frame_of(0)
        kernel.exit_task(task.tid)
        assert len(tapeworm.registry) == 0
        assert tapeworm.structure.occupancy() == 0
        assert not kernel.machine.ecc.is_trapped(frame * PAGE_SIZE)

    def test_refault_after_removal_recounts(self):
        kernel = _kernel()
        tapeworm = _install(kernel, cache=CacheConfig(size_bytes=4096))
        task = _simulated_task(kernel, tapeworm, "first")
        kernel.run_chunk(task, SEQ_4K[:64])
        kernel.exit_task(task.tid)
        again = _simulated_task(kernel, tapeworm, "second")
        kernel.run_chunk(again, SEQ_4K[:64])
        assert tapeworm.stats.total_misses == 32  # cold both times


class TestIndexing:
    def test_virtual_indexing_separates_tasks(self):
        kernel = _kernel()
        config = CacheConfig(size_bytes=4096, indexing=Indexing.VIRTUAL)
        tapeworm = _install(kernel, cache=config)
        a = _simulated_task(kernel, tapeworm, "a")
        b = _simulated_task(kernel, tapeworm, "b")
        kernel.run_chunk(a, SEQ_4K[:64])
        kernel.run_chunk(b, SEQ_4K[:64])  # same VAs, private frames
        assert tapeworm.stats.total_misses == 32
        # identical VAs index identical sets: in a direct-mapped virtual
        # cache, b's differently-tagged lines displaced a's
        keys = tapeworm.structure.resident_keys()
        assert {key[0] for key in keys} == {b.tid}
        # ...so a traps again on its next pass (conflict misses)
        kernel.run_chunk(a, SEQ_4K[:64])
        assert tapeworm.stats.misses[Component.USER] == 48

    def test_virtual_displacement_translates_to_physical_trap(self):
        kernel = _kernel()
        config = CacheConfig(size_bytes=64, indexing=Indexing.VIRTUAL)
        tapeworm = _install(kernel, cache=config)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, _refs(0x000, 0x040, 0x000))
        assert tapeworm.stats.total_misses == 3
        table = kernel.machine.mmu.table(task.tid)
        pa = table.frame_of(0) * PAGE_SIZE
        # 0x040 was displaced by the second 0x000 miss: trapped again
        assert kernel.machine.ecc.is_trapped(pa + 0x40)


class TestSampling:
    def test_traps_only_on_sampled_sets(self):
        kernel = _kernel()
        tapeworm = _install(
            kernel, cache=CacheConfig(size_bytes=4096), sampling=4,
            sampling_seed=5,
        )
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K)
        # 256 lines touched; only ~1/4 of sets sampled
        sampled_sets = set(tapeworm.sampler.sampled_sets().tolist())
        assert tapeworm.stats.total_misses == len(sampled_sets)

    def test_estimate_scales_by_denominator(self):
        kernel = _kernel()
        tapeworm = _install(
            kernel, cache=CacheConfig(size_bytes=4096), sampling=4
        )
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K)
        assert tapeworm.estimated_total_misses() == (
            tapeworm.stats.total_misses * 4
        )


class TestTrueErrors:
    def test_true_error_detected_not_counted(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:4])  # map + register the page
        table = kernel.machine.mmu.table(task.tid)
        pa = table.frame_of(0) * PAGE_SIZE
        misses_before = tapeworm.stats.total_misses
        kernel.machine.ecc.inject_true_error(pa + 0x800, bit=9)
        kernel.run_chunk(task, _refs(0x800))
        assert tapeworm.true_errors_detected == 1
        # the reference at 0x800 was a real miss too, but the handler
        # classified the trap as a true error and only scrubbed it
        assert tapeworm.stats.total_misses >= misses_before


class TestStatsInterface:
    def test_snapshot_is_a_copy(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:64])
        snapshot = tapeworm.snapshot_stats()
        kernel.run_chunk(task, SEQ_4K[64:128])
        assert snapshot.total_misses < tapeworm.stats.total_misses

    def test_reset(self):
        kernel = _kernel()
        tapeworm = _install(kernel)
        task = _simulated_task(kernel, tapeworm)
        kernel.run_chunk(task, SEQ_4K[:64])
        tapeworm.reset_stats()
        assert tapeworm.stats.total_misses == 0
        assert tapeworm.overhead_cycles == 0
