"""Tapeworm in TLB-simulation mode (page-valid-bit traps)."""

import numpy as np
import pytest

from repro._types import Component, PAGE_SIZE
from repro.caches.config import TLBConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


def _kernel():
    machine = Machine(
        MachineConfig(memory_bytes=16 * 1024 * 1024, n_vpages=1024)
    )
    return Kernel(machine=machine, alloc_policy="sequential", trial_seed=0)


def _install(kernel, **tlb_kwargs):
    config = TapewormConfig(structure="tlb", tlb=TLBConfig(**tlb_kwargs))
    tapeworm = Tapeworm(kernel, config)
    tapeworm.install()
    return tapeworm


def _task(kernel, tapeworm, name="job"):
    task = kernel.spawn(name, Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    return task


def _page_refs(*vpns):
    return np.array([vpn * PAGE_SIZE for vpn in vpns], dtype=np.int64)


def test_compulsory_tlb_misses():
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=8)
    task = _task(kernel, tapeworm)
    kernel.run_chunk(task, _page_refs(0, 1, 2, 0, 1, 2))
    assert tapeworm.stats.total_misses == 3


def test_capacity_misses_on_lru_displacement():
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=2)
    task = _task(kernel, tapeworm)
    kernel.run_chunk(task, _page_refs(0, 1, 2, 0))
    # 0,1,2 compulsory; 2 displaces 0; final 0 misses again
    assert tapeworm.stats.total_misses == 4


def test_displaced_page_gets_valid_bit_trap():
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=2)
    task = _task(kernel, tapeworm)
    kernel.run_chunk(task, _page_refs(0, 1, 2))
    table = kernel.machine.mmu.table(task.tid)
    assert table.is_page_trapped(0)  # LRU victim of page 2's insertion
    assert not table.is_page_trapped(2)


def test_tlb_bigger_than_hardware_simulable():
    """The simulated structure is unconstrained by the host's 64-entry
    TLB — a 128-entry simulation just sets fewer traps."""
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=128)
    task = _task(kernel, tapeworm)
    vpns = list(range(100)) + list(range(100))
    kernel.run_chunk(task, _page_refs(*vpns))
    assert tapeworm.stats.total_misses == 100  # pure compulsory


def test_superpage_entries_cover_multiple_pages():
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=4, page_bytes=4 * PAGE_SIZE)
    task = _task(kernel, tapeworm)
    kernel.run_chunk(task, _page_refs(0, 1, 2, 3))
    # one superpage entry covers machine pages 0-3: one miss
    assert tapeworm.stats.total_misses == 1
    kernel.run_chunk(task, _page_refs(4, 5))
    assert tapeworm.stats.total_misses == 2


def test_tlb_miss_cost_applied():
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=4)
    task = _task(kernel, tapeworm)
    kernel.run_chunk(task, _page_refs(0, 1))
    assert tapeworm.overhead_cycles == 2 * tapeworm._miss_cycles
    assert tapeworm._miss_cycles < 246  # cheaper than the ECC path


def test_task_exit_cleans_tlb_entries():
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=8)
    task = _task(kernel, tapeworm)
    kernel.run_chunk(task, _page_refs(0, 1, 2))
    kernel.exit_task(task.tid)
    assert len(tapeworm.registry) == 0


def test_per_task_tlb_tags():
    kernel = _kernel()
    tapeworm = _install(kernel, n_entries=8)
    a = _task(kernel, tapeworm, "a")
    b = _task(kernel, tapeworm, "b")
    kernel.run_chunk(a, _page_refs(0))
    kernel.run_chunk(b, _page_refs(0))  # same VPN, its own entry
    assert tapeworm.stats.total_misses == 2
