"""Shape assertions for the simulation-driven experiments.

Run at the smallest budget: these check orderings and qualitative shape
(who wins, what varies, what saturates), not absolute counts — that is
what the benchmarks regenerate at larger budgets.
"""

import pytest

from repro._types import Component

pytestmark = pytest.mark.slow


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.figure2 import run_figure2

        return run_figure2("smoke", sizes_kb=(1, 4, 16, 64))

    def test_miss_ratio_monotone_nonincreasing(self, result):
        ratios = [row.miss_ratio for row in result.rows]
        assert all(a >= b for a, b in zip(ratios, ratios[1:]))

    def test_tapeworm_wins_everywhere(self, result):
        for row in result.rows:
            assert row.tapeworm_slowdown < row.cache2000_slowdown

    def test_tapeworm_slowdown_falls_much_faster(self, result):
        first, last = result.rows[0], result.rows[-1]
        tapeworm_drop = first.tapeworm_slowdown / max(last.tapeworm_slowdown, 1e-9)
        cache2000_drop = first.cache2000_slowdown / last.cache2000_slowdown
        assert tapeworm_drop > cache2000_drop * 2

    def test_cache2000_never_below_the_floor(self, result):
        for row in result.rows:
            assert row.cache2000_slowdown > 15  # the ~20x floor

    def test_render(self, result):
        from repro.experiments.figure2 import render

        assert "Figure 2" in render(result)


class TestTable34:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.table34 import run_table34

        return run_table34("smoke")

    def test_measured_fractions_track_table4(self, result):
        for row in result.rows:
            assert row.measured.frac_kernel == pytest.approx(
                row.meta.frac_kernel, abs=0.10
            )
            assert row.measured.frac_user == pytest.approx(
                row.meta.frac_user, abs=0.10
            )

    def test_task_counts_exact(self, result):
        for row in result.rows:
            assert row.measured.user_task_count == row.meta.user_task_count

    def test_render(self, result):
        from repro.experiments.table34 import render

        text = render(result)
        assert "sdet" in text and "281" in text


class TestTable5:
    def test_break_even_near_paper(self):
        from repro.experiments.table5 import run_table5

        result = run_table5("smoke")
        assert result.tapeworm_cycles_per_miss == 246
        assert 2.5 < result.break_even_hits_per_miss < 6

    def test_cache2000_cost_in_paper_band(self):
        from repro.experiments.table5 import run_table5

        result = run_table5("smoke")
        # 40-60 cycles to generate+process, per the paper; our model adds
        # the miss premium so the band is a little wider
        assert 80 < result.cache2000_cycles_per_address < 140


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.figure3 import run_figure3

        return run_figure3("smoke")

    def test_sampling_cuts_slowdown_proportionally(self, result):
        full = result.point("sampling", 1, 1).slowdown
        eighth = result.point("sampling", 8, 1).slowdown
        assert eighth < full / 4

    def test_associativity_changes_slowdown_only_modestly(self, result):
        """The handler's per-miss cost grows only slightly with
        associativity (Table 5); slowdown moves with miss counts.  Our
        synthetic loop streams do not reward LRU associativity the way
        the paper's binaries did (see EXPERIMENTS.md deviations), so the
        assertion here is the cost-side shape: same order of magnitude
        across 1/2/4 ways at every size."""
        for size_kb in (1, 2, 4, 8):
            dm = result.point("associativity", 1, size_kb).slowdown
            four_way = result.point("associativity", 4, size_kb).slowdown
            assert four_way < dm * 2.0
            assert four_way > dm * 0.2

    def test_longer_lines_simulate_faster(self, result):
        short = result.point("line_bytes", 16, 1).slowdown
        long = result.point("line_bytes", 64, 1).slowdown
        assert long < short

    def test_render(self, result):
        from repro.experiments.figure3 import render

        assert "sampling" in render(result)


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments.table6 import run_table6

        # "quick" so eqntott's user component gets past its compulsory
        # misses; at tiny budgets cold-start floors distort the ordering
        return run_table6("quick", workloads=("mpeg_play", "eqntott", "sdet"))

    def test_interference_nonnegative(self, result):
        for row in result.rows:
            assert row.interference >= 0

    def test_system_dominates_eqntott(self, result):
        """Table 6's headline: SPEC-style user tasks barely miss; the
        servers and kernel dominate."""
        row = result.row("eqntott")
        assert row.kernel > row.user
        assert row.servers > row.user

    def test_traces_match_user_order_of_magnitude(self, result):
        row = result.row("mpeg_play")
        assert row.from_traces is not None
        assert row.from_traces == pytest.approx(row.user, rel=1.0)

    def test_multi_task_has_no_trace_column(self, result):
        assert result.row("sdet").from_traces is None

    def test_render(self, result):
        from repro.experiments.table6 import render

        assert "Interference" in render(result)


class TestVarianceTables:
    def test_table8_sampling_variance_structure(self):
        from repro.experiments.table8 import run_table8

        result = run_table8("smoke", n_trials=3, sizes_kb=(4, 16))
        for size_kb in (4, 16):
            assert result.unsampled[size_kb].stdev == 0.0
        assert any(
            result.sampled[size].stdev > 0 for size in (4, 16)
        )

    def test_table9_page_allocation_variance_structure(self):
        from repro.experiments.table9 import run_table9

        result = run_table9("quick", n_trials=3, sizes_kb=(4, 16))
        assert result.virtual[4].stdev == 0.0
        assert result.virtual[16].stdev == 0.0
        assert result.physical[4].stdev == 0.0  # pages overlap at 4 KB
        assert result.physical[16].stdev > 0.0

    def test_table7_shows_more_variance_than_table10(self):
        from repro.experiments.table10 import run_table10
        from repro.experiments.table7 import run_table7

        workloads = ("mpeg_play", "espresso")
        noisy = run_table7("smoke", n_trials=3, workloads=workloads)
        clean = run_table10("smoke", n_trials=3, workloads=workloads)
        noisy_pct = sum(noisy.stats[w].stdev_pct for w in workloads)
        clean_pct = sum(clean.stats[w].stdev_pct for w in workloads)
        assert clean_pct < noisy_pct


class TestFigure4:
    def test_dilation_increases_and_saturates(self):
        from repro.experiments.figure4 import run_figure4

        result = run_figure4("smoke", n_trials=2, sweep=(16, 4, 1))
        increases = [p.increase_pct for p in result.points]
        slowdowns = [p.slowdown for p in result.points]
        assert slowdowns == sorted(slowdowns)
        assert increases[-1] > 2.0  # dilation inflates misses
        assert increases[-1] < 40.0  # but not unboundedly
