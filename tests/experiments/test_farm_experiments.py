"""Farm-backed experiments are bit-for-bit identical to serial runs."""

import pytest

from repro.errors import ConfigError
from repro.farm import Farm, FarmConfig
from repro.harness.experiment import run_trials_farm


@pytest.fixture
def farm(tmp_path):
    return Farm(FarmConfig(max_workers=2, cache_dir=tmp_path / "farm-cache"))


def test_table7_farm_equals_serial(farm):
    from repro.experiments.table7 import run_table7

    workloads = ("espresso", "xlisp")
    serial = run_table7("smoke", n_trials=3, workloads=workloads)
    farmed = run_table7("smoke", n_trials=3, workloads=workloads, farm=farm)
    for name in workloads:
        assert farmed.stats[name].values == serial.stats[name].values

    # a warm-cache rerun executes nothing and still agrees
    rerun = run_table7("smoke", n_trials=3, workloads=workloads, farm=farm)
    for name in workloads:
        assert rerun.stats[name].values == serial.stats[name].values
    assert farm.last_run.executed == 0
    assert farm.last_run.cache_hits == 3


def test_table9_farm_equals_serial(farm):
    from repro.experiments.table9 import run_table9

    sizes = (4, 16)
    serial = run_table9("smoke", n_trials=2, sizes_kb=sizes)
    farmed = run_table9("smoke", n_trials=2, sizes_kb=sizes, farm=farm)
    for size in sizes:
        assert farmed.physical[size].values == serial.physical[size].values
        assert farmed.virtual[size].values == serial.virtual[size].values
    # the whole sweep went through as one batch
    assert farm.last_run.jobs == len(sizes) * 2 * 2


def test_table8_farm_equals_serial(farm):
    from repro.experiments.table8 import run_table8

    sizes = (2, 8)
    serial = run_table8("smoke", n_trials=2, sizes_kb=sizes)
    farmed = run_table8("smoke", n_trials=2, sizes_kb=sizes, farm=farm)
    for size in sizes:
        assert farmed.sampled[size].values == serial.sampled[size].values
        assert farmed.unsampled[size].values == serial.unsampled[size].values


def test_table10_farm_equals_serial(farm):
    from repro.experiments.table10 import run_table10

    workloads = ("jpeg_play",)
    serial = run_table10("smoke", n_trials=2, workloads=workloads)
    farmed = run_table10("smoke", n_trials=2, workloads=workloads, farm=farm)
    assert farmed.stats["jpeg_play"].values == serial.stats["jpeg_play"].values


def test_run_trials_farm_validates_arguments(farm):
    with pytest.raises(ConfigError):
        run_trials_farm("table7.measure", {}, 2.5, farm=farm)
    with pytest.raises(ConfigError):
        run_trials_farm("table7.measure", {}, 2, base_seed=1.0, farm=farm)
    with pytest.raises(ConfigError):
        run_trials_farm("table7.measure", {}, 0, farm=farm)
