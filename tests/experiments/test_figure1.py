"""Figure 1's live demonstration of the two core loops."""

from repro.experiments.figure1 import (
    DEMO_ADDRESSES,
    render,
    run_figure1,
)


def test_both_loops_agree_on_misses():
    result = run_figure1()
    assert result.trace_misses == result.trap_misses == 5


def test_work_asymmetry():
    result = run_figure1()
    assert result.trace_work == len(DEMO_ADDRESSES)
    assert result.trap_work == result.trap_misses


def test_event_logs_show_the_loops():
    result = run_figure1()
    assert any("hit" in event for event in result.trace_events)
    assert all("search" in event for event in result.trace_events)
    assert all(
        "tw_clear_trap" in event and "tw_set_trap" in event
        for event in result.trap_events
    )


def test_deterministic():
    a, b = run_figure1(), run_figure1()
    assert a.trap_events == b.trap_events
    assert a.trace_events == b.trace_events


def test_render_contains_both_sections():
    text = render(run_figure1())
    assert "trace-driven" in text and "trap-driven" in text
    assert "identical miss counts" in text
