"""The experiments that need no simulation budget: Tables 11 and 12."""

import pytest

from repro.errors import ConfigError
from repro.experiments import budget_refs
from repro.experiments.table11 import BUCKETS, run_table11, render as render11
from repro.experiments.table12 import run_table12, render as render12


def test_budget_tiers():
    assert budget_refs("quick") > budget_refs("smoke")
    assert budget_refs("full") > budget_refs("quick")
    with pytest.raises(ConfigError):
        budget_refs("galactic")


class TestTable11:
    def test_machine_dependent_share_is_small(self):
        """The paper's portability claim: <5% machine-dependent.  Our
        analogous split stays in single digits."""
        result = run_table11()
        assert result.percent("machine-dependent kernel") < 10

    def test_user_code_dominates(self):
        result = run_table11()
        assert result.percent("machine-independent user") > 50

    def test_every_bucket_counted(self):
        result = run_table11()
        for bucket in BUCKETS:
            assert result.lines[bucket] > 0
        assert result.substrate_lines > 0

    def test_render(self):
        text = render11(run_table11())
        assert "machine-dependent kernel" in text
        assert "82%" in text  # paper column present


class TestTable12:
    def test_r3000_full_capability(self):
        result = run_table12()
        r3000 = result.assessment("MIPS R3000")
        assert r3000.can_simulate_caches and r3000.can_simulate_tlbs

    def test_i486_tlb_only_like_the_gateway_port(self):
        result = run_table12()
        i486 = result.assessment("Intel i486")
        assert not i486.can_simulate_caches
        assert i486.can_simulate_tlbs

    def test_every_processor_can_do_tlb_simulation(self):
        """Invalid-page traps are universal in Table 12."""
        result = run_table12()
        assert all(a.can_simulate_tlbs for a in result.assessments)

    def test_render_matrix_shape(self):
        text = render12(run_table12())
        assert "MIPS R3000" in text and "PowerPC" in text
        assert "Port feasibility" in text
