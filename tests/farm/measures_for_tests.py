"""Module-level measures for farm tests.

Farm measures must be importable in worker processes, so the test
doubles live here rather than as closures inside the tests.  Each is
registered under a ``test.*`` name at import time; forked workers
inherit the registration, and spawned ones re-import this module by
path.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.farm import register


def double(seed: int) -> float:
    return seed * 2.0


def counted(seed: int, counter_file: str) -> float:
    """Record every execution in ``counter_file``, then behave like
    :func:`double`.  Appends are atomic enough for line counting."""
    with open(counter_file, "a") as handle:
        handle.write(f"{seed}\n")
    return seed * 2.0


def crash_always(seed: int) -> float:
    """Kill the worker process outright (simulates a hard crash)."""
    os._exit(3)


def crash_once(seed: int, sentinel: str) -> float:
    """Crash the worker on the first attempt, succeed on the retry."""
    path = Path(sentinel)
    if not path.exists():
        path.write_text("crashed")
        os._exit(3)
    return seed * 2.0


def slow(seed: int, delay: float) -> float:
    import time

    time.sleep(delay)
    return float(seed)


def spanned(seed: int) -> float:
    """Open a nested span, so round-trip tests can check parent links."""
    from repro.telemetry.spans import span

    with span("test.inner", seed=seed):
        return seed * 2.0


def metered(seed: int) -> float:
    """Publish a deterministic counter into the active session (if any)."""
    from repro.telemetry.session import active

    session = active()
    if session is not None:
        session.metrics.counter("test.work").inc(seed + 1)
        session.metrics.histogram(
            "test.sizes", bounds=(1.0, 10.0, 100.0)
        ).observe(seed)
    return float(seed)


register("test.double", double)
register("test.counted", counted)
register("test.crash_always", crash_always)
register("test.crash_once", crash_once)
register("test.slow", slow)
register("test.spanned", spanned)
register("test.metered", metered)
