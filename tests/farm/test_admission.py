"""Admission control: bounded depth, fair share, shed-to-serial."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.farm import AdmissionConfig, AdmissionController, Job
from repro.telemetry.registry import MetricsRegistry


def _jobs(n, base_seed=0):
    return [Job("test.double", {}, seed=base_seed + i) for i in range(n)]


class TestBoundedDepth:
    def test_under_the_cap_admits_normally(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=10))
        ticket = controller.submit(_jobs(4))
        assert not ticket.degraded
        assert controller.depth == 4
        assert controller.shed == 0

    def test_over_the_cap_degrades_instead_of_rejecting(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=4))
        first = controller.submit(_jobs(3))
        burst = controller.submit(_jobs(3, base_seed=10))
        assert not first.degraded
        assert burst.degraded  # admitted anyway — nothing is rejected
        assert controller.admitted == 2
        assert controller.shed == 1
        assert controller.tickets_queued == 2

    def test_shed_breaker_latches_serial_mode(self):
        controller = AdmissionController(
            AdmissionConfig(max_queue_depth=2, shed_breaker=2)
        )
        controller.submit(_jobs(2))
        controller.submit(_jobs(2, base_seed=10))  # shed 1
        controller.submit(_jobs(2, base_seed=20))  # shed 2 -> latch
        assert controller.degraded_latched
        controller.drain_order()  # queue empties
        # latched: even an under-cap submission stays degraded...
        latched = controller.submit(_jobs(1, base_seed=30))
        assert latched.degraded
        # ...but an under-cap admission resets the breaker for the next
        fresh = controller.submit(_jobs(1, base_seed=40))
        assert controller.depth <= 2 or fresh.degraded

    def test_under_cap_submission_resets_the_shed_streak(self):
        controller = AdmissionController(
            AdmissionConfig(max_queue_depth=4, shed_breaker=2)
        )
        controller.submit(_jobs(4))  # fills the queue
        controller.submit(_jobs(1, base_seed=10))  # shed 1
        controller.drain_order()
        controller.submit(_jobs(1, base_seed=20))  # under cap: streak resets
        controller.submit(_jobs(9, base_seed=30))  # shed, but streak == 1
        assert not controller.degraded_latched


class TestFairShare:
    def test_round_robin_across_clients(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=100))
        a1 = controller.submit(_jobs(1), client="a")
        a2 = controller.submit(_jobs(1, base_seed=1), client="a")
        a3 = controller.submit(_jobs(1, base_seed=2), client="a")
        b1 = controller.submit(_jobs(1, base_seed=3), client="b")
        order = controller.drain_order()
        # client a cannot starve client b: b's one ticket drains second
        assert order[0] is a1
        assert order[1] is b1
        assert order[2:] == [a2, a3]

    def test_next_ticket_returns_none_when_empty(self):
        controller = AdmissionController()
        assert controller.next_ticket() is None
        controller.submit(_jobs(1))
        assert controller.next_ticket() is not None
        assert controller.next_ticket() is None


class TestReporting:
    def test_config_validation(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(max_queue_depth=0)
        with pytest.raises(ConfigError):
            AdmissionConfig(shed_breaker=-1)

    def test_ticket_summary_shape(self):
        controller = AdmissionController()
        ticket = controller.submit(_jobs(2), client="c", batch="b")
        summary = ticket.summary()
        assert summary == {
            "ticket": 1,
            "client": "c",
            "batch": "b",
            "jobs": 2,
            "degraded": False,
            "state": "queued",
            "error": "",
        }

    def test_publish_into_registry(self):
        controller = AdmissionController(AdmissionConfig(max_queue_depth=2))
        controller.submit(_jobs(2), client="a")
        controller.submit(_jobs(2, base_seed=10), client="b")
        registry = MetricsRegistry()
        controller.publish(registry)
        snap = registry.snapshot()
        assert snap["farm.service.queue_depth"] == 4
        assert snap["farm.service.clients"] == 2
        assert snap["farm.service.admitted"] == 2
        assert snap["farm.service.shed"] == 1
