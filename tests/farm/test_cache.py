"""The on-disk result store: roundtrips, counters, persistence, bypass."""

import json

from repro.farm import ResultCache


def test_roundtrip_and_counters(tmp_path):
    cache = ResultCache(tmp_path)
    hit, value = cache.get("k1")
    assert (hit, value) == (False, None)
    cache.put("k1", 42.5, measure="m", seed=3, elapsed=0.01)
    hit, value = cache.get("k1")
    assert (hit, value) == (True, 42.5)
    assert cache.hits == 1
    assert cache.misses == 1
    assert len(cache) == 1


def test_persists_across_instances(tmp_path):
    ResultCache(tmp_path).put("k", {"total_misses": 10.0})
    reopened = ResultCache(tmp_path)
    hit, value = reopened.get("k")
    assert hit
    assert value == {"total_misses": 10.0}


def test_floats_roundtrip_exactly(tmp_path):
    ugly = 0.1 + 0.2  # not representable; repr must round-trip bit-for-bit
    ResultCache(tmp_path).put("k", ugly)
    _, value = ResultCache(tmp_path).get("k")
    assert value == ugly


def test_disabled_cache_bypasses_storage(tmp_path):
    cache = ResultCache(tmp_path, enabled=False)
    cache.put("k", 1.0)
    hit, _ = cache.get("k")
    assert not hit
    assert not (tmp_path / "results.jsonl").exists()
    # and an enabled cache over the same dir sees nothing
    assert len(ResultCache(tmp_path)) == 0


def test_corrupt_lines_are_skipped(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("good", 1.0)
    with (tmp_path / "results.jsonl").open("a") as handle:
        handle.write("{torn write\n")
    reopened = ResultCache(tmp_path)
    assert reopened.get("good") == (True, 1.0)
    assert len(reopened) == 1


def test_clear_drops_everything(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("a", 1.0)
    cache.put("b", 2.0)
    assert cache.clear() == 2
    assert len(cache) == 0
    assert not (tmp_path / "results.jsonl").exists()


def test_record_run_accumulates(tmp_path):
    cache = ResultCache(tmp_path)
    cache.record_run({"jobs": 4, "cache_hits": 1, "executed": 3,
                      "retries": 0, "wall_clock_secs": 1.5})
    cache.record_run({"jobs": 4, "cache_hits": 4, "executed": 0,
                      "retries": 1, "wall_clock_secs": 0.5})
    stats = cache.read_stats()
    assert stats["runs"] == 2
    assert stats["jobs"] == 8
    assert stats["cache_hits"] == 5
    assert stats["executed"] == 3
    assert stats["retries"] == 1
    assert stats["wall_clock_secs"] == 2.0
    # the stats file is valid JSON on disk
    assert json.loads((tmp_path / "stats.json").read_text())["runs"] == 2
