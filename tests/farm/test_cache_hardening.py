"""The result cache under corruption: CRC, quarantine, torn writes."""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.atomicio import atomic_append_line
from repro.farm.cache import ResultCache, record_crc
from repro.faults.infra import garble_cache_records


def _seed_cache(directory: Path, n=3) -> ResultCache:
    cache = ResultCache(directory)
    for i in range(n):
        cache.put(f"key-{i}", i * 1.5, measure="test.double", seed=i)
    return cache


class TestCRC:
    def test_put_stamps_a_verifiable_crc(self, tmp_path):
        _seed_cache(tmp_path)
        for line in (tmp_path / "results.jsonl").read_text().splitlines():
            record = json.loads(line)
            assert record["crc"] == record_crc(record)

    def test_flipped_byte_is_quarantined_not_served(self, tmp_path):
        _seed_cache(tmp_path)
        assert garble_cache_records(tmp_path, indices=(1,)) == 1
        fresh = ResultCache(tmp_path)
        hit0, value0 = fresh.get("key-0")
        hit1, _ = fresh.get("key-1")
        assert hit0 and value0 == 0.0
        assert not hit1  # the damaged record must miss, never lie
        assert fresh.corrupt == 1
        quarantined = (tmp_path / "quarantine.jsonl").read_text()
        assert "key-1" in quarantined

    def test_legacy_records_without_crc_still_load(self, tmp_path):
        record = {"key": "old", "measure": "m", "seed": 0, "value": 42}
        atomic_append_line(
            tmp_path / "results.jsonl", json.dumps(record, sort_keys=True)
        )
        cache = ResultCache(tmp_path)
        assert cache.get("old") == (True, 42)
        assert cache.corrupt == 0


class TestTrailingGarbage:
    def test_truncated_trailing_line_is_skipped_and_counted(self, tmp_path):
        cache = _seed_cache(tmp_path)
        path = tmp_path / "results.jsonl"
        text = path.read_text()
        path.write_text(text + '{"key": "torn", "val')  # no newline, cut
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 3  # the intact records all load
        assert fresh.corrupt == 1
        assert cache.get("key-2") == (True, 3.0)

    def test_binary_garbage_line_is_quarantined(self, tmp_path):
        _seed_cache(tmp_path)
        path = tmp_path / "results.jsonl"
        with open(path, "a") as handle:
            handle.write("\x00\x7f garbage \x01\n")
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 3
        assert fresh.corrupt == 1

    def test_wrong_shape_json_is_quarantined(self, tmp_path):
        _seed_cache(tmp_path)
        path = tmp_path / "results.jsonl"
        with open(path, "a") as handle:
            handle.write('["not", "a", "record"]\n')
            handle.write('{"key": "no-value-field"}\n')
        fresh = ResultCache(tmp_path)
        assert len(fresh) == 3
        assert fresh.corrupt == 2

    def test_corruption_counter_folds_into_stats(self, tmp_path):
        _seed_cache(tmp_path)
        garble_cache_records(tmp_path, indices=(0,))
        fresh = ResultCache(tmp_path)
        len(fresh)  # force the read
        fresh.record_run({"jobs": 0})
        assert fresh.read_stats()["cache_corrupt"] == 1
        # a second run must not double-count the same corruption
        fresh.record_run({"jobs": 0})
        assert fresh.read_stats()["cache_corrupt"] == 1


class TestKillMidWrite:
    def test_killed_writer_never_tears_a_record(self, tmp_path):
        """A writer killed mid-append leaves only whole, verifiable
        records behind — the crash-consistency claim, tested with a
        real SIGKILL rather than a simulated one."""
        script = textwrap.dedent(
            """
            import json, os, sys
            from repro.farm.cache import ResultCache

            cache = ResultCache(sys.argv[1])
            i = 0
            while True:
                cache.put(f"key-{i}", list(range(200)), measure="m", seed=i)
                if i == 0:
                    print("first-write-done", flush=True)
                i += 1
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "first-write-done"
            # let it race through appends, then kill it mid-flight
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=10)

        results = tmp_path / "results.jsonl"
        assert results.exists()
        survivors = ResultCache(tmp_path)
        count = len(survivors)
        assert count >= 1  # the acknowledged first write is durable
        assert survivors.corrupt == 0, "a torn record escaped os.replace"
        for line in results.read_text().splitlines():
            record = json.loads(line)
            assert record["crc"] == record_crc(record)
