"""Cache GC: LRU eviction, pins, crash-safe ordering, sharding."""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.farm import CacheGC, Job, JobJournal, journal_pins
from repro.farm.cache import RESULTS_FILE, ResultCache
from repro.farm.gc import shard_dir
from repro.streams.store import StreamStore
from repro.telemetry.registry import MetricsRegistry


def _fill_store(store: StreamStore, n: int, nbytes: int = 512):
    keys = []
    for i in range(n):
        key = f"{i:02x}" + "ab" * 31  # distinct two-hex-char shard prefix
        store.put(key, np.arange(nbytes // 8, dtype=np.int64) + i)
        keys.append(key)
    return keys


def _age(path, seconds):
    stat = path.stat()
    os.utime(path, (stat.st_atime - seconds, stat.st_mtime - seconds))


class TestStreamTier:
    def test_lru_eviction_under_budget(self, tmp_path):
        store = StreamStore(tmp_path)
        keys = _fill_store(store, 4)
        # make key 0 the coldest, key 3 the hottest
        for i, key in enumerate(keys):
            _age(tmp_path / f"{key}.npy", (4 - i) * 1000)
        gc = CacheGC(budget_bytes=1200)
        report = gc.collect_stream_tier(tmp_path)
        assert report.evicted >= 2
        assert report.bytes_after <= 1200
        # the hottest entry survived; the coldest died first
        assert (tmp_path / f"{keys[3]}.npy").exists()
        assert not (tmp_path / f"{keys[0]}.npy").exists()

    def test_pinned_keys_are_never_evicted(self, tmp_path):
        store = StreamStore(tmp_path)
        keys = _fill_store(store, 3)
        gc = CacheGC(budget_bytes=0, pins=frozenset(keys[:1]))
        report = gc.collect_stream_tier(tmp_path)
        assert report.pinned_skips == 1
        assert (tmp_path / f"{keys[0]}.npy").exists()
        assert not (tmp_path / f"{keys[1]}.npy").exists()

    def test_eviction_is_sidecar_first_blob_last(self, tmp_path):
        """An orphan blob (no sidecar) is the only legal crash residue,
        and the next pass sweeps it as a clean miss."""
        store = StreamStore(tmp_path)
        (key,) = _fill_store(store, 1)
        # simulate the crash window: sidecar gone, blob still there
        (tmp_path / f"{key}.json").unlink()
        report = CacheGC(None).collect_stream_tier(tmp_path)
        assert report.orphans_swept == 1
        assert not (tmp_path / f"{key}.npy").exists()

    def test_shard_migration_keeps_entries_readable(self, tmp_path):
        store = StreamStore(tmp_path)
        keys = _fill_store(store, 3)
        before = {key: store.get(key).tolist() for key in keys}
        report = CacheGC(None).collect_stream_tier(tmp_path, shard=True)
        assert report.migrated == 3
        for key in keys:
            target = shard_dir(tmp_path, key)
            assert (target / f"{key}.npy").exists()
            assert not (tmp_path / f"{key}.npy").exists()
        # a fresh store reads the sharded layout transparently
        fresh = StreamStore(tmp_path)
        for key in keys:
            value = fresh.get(key)
            assert value is not None and value.tolist() == before[key]

    def test_missing_directory_is_a_noop(self, tmp_path):
        report = CacheGC(10).collect_stream_tier(tmp_path / "nope")
        assert report.scanned == 0 and report.evicted == 0


class TestFarmTier:
    def test_budget_keeps_newest_records(self, tmp_path):
        cache = ResultCache(tmp_path)
        for i in range(10):
            cache.put(f"{i:064x}", float(i), measure="test.double", seed=i)
        size = (tmp_path / RESULTS_FILE).stat().st_size
        gc = CacheGC(budget_bytes=size // 2)
        report = gc.collect_farm_tier(tmp_path)
        assert report.evicted > 0
        assert report.bytes_after <= size // 2
        survivor = ResultCache(tmp_path)
        hit, value = survivor.get(f"{9:064x}")  # newest survives
        assert hit and value == 9.0
        hit, _ = survivor.get(f"{0:064x}")  # oldest evicted
        assert not hit

    def test_pins_survive_even_over_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        pinned_key = f"{0:064x}"
        for i in range(10):
            cache.put(f"{i:064x}", float(i), measure="test.double", seed=i)
        gc = CacheGC(budget_bytes=0, pins=frozenset({pinned_key}))
        report = gc.collect_farm_tier(tmp_path)
        assert report.pinned_skips == 1
        hit, value = ResultCache(tmp_path).get(pinned_key)
        assert hit and value == 0.0

    def test_duplicate_keys_keep_only_the_latest(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = f"{1:064x}"
        cache.put(key, 1.0, measure="test.double", seed=1)
        cache.put(key, 2.0, measure="test.double", seed=1)  # superseding
        size = (tmp_path / RESULTS_FILE).stat().st_size
        CacheGC(budget_bytes=size - 1).collect_farm_tier(tmp_path)
        lines = (tmp_path / RESULTS_FILE).read_text().splitlines()
        assert len(lines) == 1
        hit, value = ResultCache(tmp_path).get(key)
        assert hit and value == 2.0

    def test_under_budget_is_untouched(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(f"{1:064x}", 1.0, measure="test.double", seed=1)
        before = (tmp_path / RESULTS_FILE).read_text()
        report = CacheGC(budget_bytes=10_000_000).collect_farm_tier(tmp_path)
        assert report.evicted == 0
        assert (tmp_path / RESULTS_FILE).read_text() == before


class TestKernelTier:
    def test_compile_ledger_is_budgeted(self, tmp_path):
        from repro.caches.pipeline.registry import LEDGER_NAME

        path = tmp_path / LEDGER_NAME
        lines = [
            json.dumps({"fingerprint": f"f{i}", "kind": "k", "pad": "x" * 64})
            for i in range(20)
        ]
        path.write_text("\n".join(lines) + "\n")
        size = path.stat().st_size
        report = CacheGC(budget_bytes=size // 4).collect_kernel_tier(tmp_path)
        assert report.evicted > 0
        kept = [json.loads(l) for l in path.read_text().splitlines()]
        assert kept  # newest records survive
        assert kept[-1]["fingerprint"] == "f19"


class TestJournalPins:
    def test_live_leases_pin_cache_entries(self, tmp_path):
        journal = JobJournal(tmp_path)
        jobs = [Job("test.double", {}, seed=i) for i in range(3)]
        keys = [job.key() for job in jobs]
        journal.queue(zip(jobs, keys), batch="b", client="c")
        epoch = journal.lease(keys[0])
        journal.commit(keys[0], epoch)  # done: no longer pinned
        pins = journal_pins(tmp_path)
        assert pins == frozenset(keys[1:])

    def test_no_journal_means_no_pins(self, tmp_path):
        assert journal_pins(tmp_path) == frozenset()


class TestReporting:
    def test_collect_walks_every_named_tier(self, tmp_path):
        (tmp_path / "farm").mkdir()
        (tmp_path / "stream").mkdir()
        reports = CacheGC(100).collect(
            farm_dir=tmp_path / "farm",
            stream_dir=tmp_path / "stream",
            kernel_dir=tmp_path / "kernel",
        )
        assert [r.tier for r in reports] == ["farm", "stream", "kernel"]

    def test_summary_and_publish(self, tmp_path):
        store = StreamStore(tmp_path)
        _fill_store(store, 3)
        gc = CacheGC(budget_bytes=0)
        gc.collect_stream_tier(tmp_path)
        summary = gc.summary()
        assert summary["evicted"] == 3
        assert summary["bytes_freed"] > 0
        registry = MetricsRegistry()
        gc.publish(registry)
        snap = registry.snapshot()
        assert snap["cache.gc.evicted{tier=stream}"] == 3
        assert snap["cache.gc.bytes_freed{tier=stream}"] > 0
