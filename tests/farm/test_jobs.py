"""Job fingerprints: stable, canonical, salt-sensitive."""

import pytest

from repro._types import Indexing
from repro.caches.config import CacheConfig
from repro.errors import ConfigError
from repro.farm import Job, canonical, fingerprint


def test_key_is_stable_across_param_ordering():
    a = Job("m", {"x": 1, "y": 2}, seed=7)
    b = Job("m", {"y": 2, "x": 1}, seed=7)
    assert a.key() == b.key()


def test_key_distinguishes_measure_params_and_seed():
    base = Job("m", {"x": 1}, seed=0)
    assert base.key() != Job("other", {"x": 1}, seed=0).key()
    assert base.key() != Job("m", {"x": 2}, seed=0).key()
    assert base.key() != Job("m", {"x": 1}, seed=1).key()


def test_salt_invalidates_keys():
    job = Job("m", {"x": 1}, seed=0)
    assert job.key("v1") != job.key("v2")


def test_key_is_a_sha256_hex_digest():
    key = Job("m", {}, seed=0).key()
    assert len(key) == 64
    assert set(key) <= set("0123456789abcdef")


def test_canonical_handles_config_dataclasses_and_enums():
    config = CacheConfig(size_bytes=16 * 1024, indexing=Indexing.VIRTUAL)
    encoded = canonical(config)
    assert encoded["__dataclass__"] == "CacheConfig"
    assert encoded["fields"]["size_bytes"] == 16 * 1024
    assert encoded["fields"]["indexing"] == {"__enum__": "Indexing.VIRTUAL"}
    # and the whole thing fingerprints deterministically
    assert fingerprint("m", {"cache": config}, 0) == fingerprint(
        "m", {"cache": config}, 0
    )


def test_canonical_sorts_sets_deterministically():
    assert canonical(frozenset({3, 1, 2})) == canonical(frozenset({2, 3, 1}))


def test_canonical_rejects_unfingerprintable_values():
    with pytest.raises(ConfigError):
        canonical(object())
    with pytest.raises(ConfigError):
        Job("m", {"fn": lambda: None}).key()


def test_job_rejects_bad_seed_and_empty_measure():
    with pytest.raises(ConfigError):
        Job("m", {}, seed=1.5)
    with pytest.raises(ConfigError):
        Job("m", {}, seed=True)
    with pytest.raises(ConfigError):
        Job("", {})
