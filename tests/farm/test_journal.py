"""The write-ahead job journal: states, fencing, corruption, compaction."""

from __future__ import annotations

import json

import pytest

from repro.errors import FarmError
from repro.farm import Job, JobJournal, StaleLeaseError
from repro.farm.journal import (
    DONE,
    FAILED,
    JOURNAL_FILE,
    JOURNAL_QUARANTINE_FILE,
    LEASED,
    POISONED,
    QUEUED,
)
from repro.telemetry.registry import MetricsRegistry


def _queue(journal: JobJournal, n: int = 3, batch: str = "b", client: str = "c"):
    jobs = [Job("test.double", {}, seed=i) for i in range(n)]
    keys = [job.key() for job in jobs]
    journal.queue(zip(jobs, keys), batch=batch, client=client)
    return jobs, keys


class TestLifecycle:
    def test_queue_lease_commit_walk_the_states(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal)
        assert journal.counts()[QUEUED] == 3

        epoch = journal.lease(keys[0])
        assert journal.get(keys[0]).state == LEASED
        journal.commit(keys[0], epoch)
        assert journal.get(keys[0]).state == DONE
        assert journal.counts() == {
            QUEUED: 2, LEASED: 0, DONE: 1, FAILED: 0, POISONED: 0,
        }

    def test_requeue_of_live_entries_is_a_noop(self, tmp_path):
        journal = JobJournal(tmp_path)
        jobs, keys = _queue(journal)
        journal.queue(zip(jobs, keys), batch="again", client="c")
        # still one entry per job, original batch label
        assert len(journal.entries()) == 3
        assert all(e.batch == "b" for e in journal.entries())

    def test_reconcile_marks_done_without_a_lease(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal, n=1)
        journal.reconcile(keys[0])
        assert journal.get(keys[0]).state == DONE

    def test_fail_and_requeue_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal, n=1)
        epoch = journal.lease(keys[0])
        journal.fail(keys[0], epoch, {"code": "execute_error"})
        entry = journal.get(keys[0])
        assert entry.state == FAILED
        assert entry.reason["code"] == "execute_error"
        journal.requeue(keys[0])
        assert journal.get(keys[0]).state == QUEUED
        assert journal.get(keys[0]).reason == {}

    def test_poison_records_a_machine_readable_reason(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal, n=1)
        epoch = journal.lease(keys[0])
        reason = {"code": "poisoned", "workers_killed": 2}
        journal.poison(keys[0], epoch, reason)
        entry = journal.get(keys[0])
        assert entry.state == POISONED
        assert entry.reason == reason
        assert journal.poisoned() == [entry]

    def test_unknown_key_raises(self, tmp_path):
        journal = JobJournal(tmp_path)
        with pytest.raises(FarmError, match="never journaled"):
            journal.lease("0" * 64)


class TestFencing:
    def test_stale_epoch_cannot_commit(self, tmp_path):
        """A resurrected worker holding an old lease must be fenced."""
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal, n=1)
        old = journal.lease(keys[0])
        fresh = journal.lease(keys[0])  # master re-leased after a crash
        assert fresh > old
        with pytest.raises(StaleLeaseError):
            journal.commit(keys[0], old)
        assert journal.get(keys[0]).state == LEASED
        assert journal.fenced_commits == 1
        journal.commit(keys[0], fresh)
        assert journal.get(keys[0]).state == DONE

    def test_fenced_commits_published(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal, n=1)
        old = journal.lease(keys[0])
        journal.lease(keys[0])
        with pytest.raises(StaleLeaseError):
            journal.commit(keys[0], old)
        registry = MetricsRegistry()
        journal.publish(registry)
        snap = registry.snapshot()
        assert snap["farm.service.fenced_commits"] == 1
        assert snap["farm.service.journal.leased"] == 1


class TestRecoverySurface:
    def test_incomplete_lists_queued_and_leased(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal)
        epoch = journal.lease(keys[0])
        journal.commit(keys[0], epoch)
        journal.lease(keys[1])
        incomplete = journal.incomplete()
        assert {e.key for e in incomplete} == {keys[1], keys[2]}
        assert journal.live_keys() == frozenset({keys[1], keys[2]})

    def test_replay_survives_process_restart(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal)
        epoch = journal.lease(keys[0])
        journal.commit(keys[0], epoch)
        reborn = JobJournal(tmp_path)
        assert reborn.get(keys[0]).state == DONE
        assert {e.key for e in reborn.incomplete()} == set(keys[1:])

    def test_entry_round_trips_params_and_seed(self, tmp_path):
        journal = JobJournal(tmp_path)
        job = Job("test.counted", {"counter_file": "/tmp/x"}, seed=7)
        journal.queue([(job, job.key())], batch="b", client="c")
        entry = JobJournal(tmp_path).get(job.key())
        assert entry.measure == "test.counted"
        assert entry.params == {"counter_file": "/tmp/x"}
        assert entry.seed == 7
        assert entry.replayable


class TestCorruption:
    def test_corrupt_line_is_quarantined_not_fatal(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal)
        path = tmp_path / JOURNAL_FILE
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-10] + "0000000000"  # break the CRC
        path.write_text("\n".join(lines) + "\n")

        reborn = JobJournal(tmp_path)
        entries = reborn.entries()
        assert len(entries) == 2  # the torn record is gone, not fatal
        assert reborn.corrupt == 1
        assert (tmp_path / JOURNAL_QUARANTINE_FILE).exists()

    def test_non_json_garbage_is_quarantined(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal, n=1)
        path = tmp_path / JOURNAL_FILE
        path.write_text(path.read_text() + "{not json\n")
        reborn = JobJournal(tmp_path)
        assert len(reborn.entries()) == 1
        assert reborn.corrupt == 1


class TestCompaction:
    def test_compact_drops_done_keeps_the_worklist(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, keys = _queue(journal)
        epoch = journal.lease(keys[0])
        journal.commit(keys[0], epoch)
        epoch = journal.lease(keys[1])
        journal.poison(keys[1], epoch, {"code": "poisoned"})
        assert journal.compact() == 1
        states = {e.key: e.state for e in JobJournal(tmp_path).entries()}
        assert states == {keys[1]: POISONED, keys[2]: QUEUED}

    def test_clear_empties_the_journal(self, tmp_path):
        journal = JobJournal(tmp_path)
        _queue(journal)
        journal.clear()
        assert JobJournal(tmp_path).entries() == []

    def test_journal_file_is_crc_checked_jsonl(self, tmp_path):
        journal = JobJournal(tmp_path)
        _queue(journal, n=1)
        for line in (tmp_path / JOURNAL_FILE).read_text().splitlines():
            record = json.loads(line)
            assert "crc" in record and "op" in record
