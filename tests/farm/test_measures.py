"""Registry resolution and the generic ``trap.measure``."""

import pytest

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import ConfigError, FarmError
from repro.farm import BUILTIN_MEASURES, execute_job, register, resolve
from repro.farm.measures import trap_measure
from repro.harness.runner import RunOptions, run_trap_driven
from repro.workloads.registry import get_workload

REFS = 60_000


def test_builtin_measures_all_resolve():
    for name in BUILTIN_MEASURES:
        assert callable(resolve(name))


def test_register_rejects_closures():
    with pytest.raises(FarmError, match="module-level"):
        register("test.closure", lambda seed: 0.0)


def test_execute_job_runs_builtin_table7_measure():
    direct = execute_job(
        "table7.measure", {"workload": "espresso", "total_refs": REFS}, 100
    )
    from repro.experiments.table7 import measure_once

    assert direct == measure_once("espresso", 100, REFS)


def test_trap_measure_matches_direct_runner():
    value = trap_measure(
        seed=3,
        workload="mpeg_play",
        total_refs=REFS,
        cache={"size_bytes": 4096, "associativity": 4},
        replacement="random",
        components=("user",),
        metric="total_misses",
    )
    report = run_trap_driven(
        get_workload("mpeg_play"),
        TapewormConfig(
            cache=CacheConfig(size_bytes=4096, associativity=4),
            replacement="random",
            sampling_seed=3,
        ),
        RunOptions(
            total_refs=REFS,
            trial_seed=3,
            simulate=frozenset({Component.USER}),
        ),
    )
    assert value == float(report.stats.total_misses)


def test_trap_measure_accepts_config_objects_and_dicts():
    as_dict = trap_measure(
        seed=1, workload="espresso", total_refs=REFS,
        cache={"size_bytes": 8192, "indexing": "virtual"},
        components=("user",), metric="total_misses",
    )
    as_config = trap_measure(
        seed=1, workload="espresso", total_refs=REFS,
        cache=CacheConfig(size_bytes=8192, indexing=Indexing.VIRTUAL),
        components=("user",), metric="total_misses",
    )
    assert as_dict == as_config


def test_trap_measure_all_metric_returns_dict():
    values = trap_measure(
        seed=0, workload="espresso", total_refs=REFS,
        cache={"size_bytes": 4096}, components=("user",), metric="all",
    )
    assert set(values) == {"total_misses", "estimated_misses", "slowdown"}
    assert values["total_misses"] > 0


def test_trap_measure_rejects_unknown_metric():
    with pytest.raises(ConfigError, match="unknown metric"):
        trap_measure(
            seed=0, workload="espresso", total_refs=REFS, metric="latency"
        )
