"""The scheduler: caching semantics, parallel determinism, crash retry."""

import pytest

import tests.farm.measures_for_tests  # noqa: F401  (registers test.* measures)
from repro.errors import ConfigError, FarmError
from repro.farm import Farm, FarmConfig, Job


def _jobs(measure, n, params=None, base_seed=0):
    return [Job(measure, params or {}, seed=base_seed + i) for i in range(n)]


def test_serial_execution_returns_values_in_job_order(tmp_path):
    farm = Farm(FarmConfig(cache_dir=tmp_path))
    values = farm.run_jobs(_jobs("test.double", 5, base_seed=10))
    assert values == [20.0, 22.0, 24.0, 26.0, 28.0]
    assert farm.last_run.executed == 5
    assert farm.last_run.cache_hits == 0


def test_cache_hit_skips_execution(tmp_path):
    counter = tmp_path / "executions"
    params = {"counter_file": str(counter)}
    farm = Farm(FarmConfig(cache_dir=tmp_path / "cache"))

    first = farm.run_jobs(_jobs("test.counted", 3, params))
    assert counter.read_text().splitlines() == ["0", "1", "2"]

    second = farm.run_jobs(_jobs("test.counted", 3, params))
    assert second == first
    # no new executions: the stored results were returned as-is
    assert counter.read_text().splitlines() == ["0", "1", "2"]
    assert farm.last_run.executed == 0
    assert farm.last_run.cache_hits == 3


def test_warm_cache_survives_farm_restart(tmp_path):
    counter = tmp_path / "executions"
    params = {"counter_file": str(counter)}
    Farm(FarmConfig(cache_dir=tmp_path / "cache")).run_jobs(
        _jobs("test.counted", 2, params)
    )
    fresh = Farm(FarmConfig(cache_dir=tmp_path / "cache"))
    fresh.run_jobs(_jobs("test.counted", 2, params))
    assert fresh.last_run.executed == 0
    assert len(counter.read_text().splitlines()) == 2


def test_no_cache_bypass_reexecutes(tmp_path):
    counter = tmp_path / "executions"
    params = {"counter_file": str(counter)}
    farm = Farm(FarmConfig(cache_dir=tmp_path / "cache", use_cache=False))
    farm.run_jobs(_jobs("test.counted", 2, params))
    farm.run_jobs(_jobs("test.counted", 2, params))
    assert len(counter.read_text().splitlines()) == 4
    assert farm.last_run.cache_hits == 0


def test_parallel_output_equals_serial_output(tmp_path):
    serial = Farm(FarmConfig(cache_dir=tmp_path / "a", use_cache=False))
    parallel = Farm(
        FarmConfig(max_workers=3, cache_dir=tmp_path / "b", use_cache=False)
    )
    jobs = _jobs("test.double", 9, base_seed=100)
    assert parallel.run_jobs(jobs) == serial.run_jobs(jobs)


def test_worker_crash_retries_then_succeeds(tmp_path):
    params = {"sentinel": str(tmp_path / "sentinel")}
    farm = Farm(
        FarmConfig(max_workers=2, cache_dir=tmp_path / "cache", max_retries=2)
    )
    values = farm.run_jobs(_jobs("test.crash_once", 2, params, base_seed=5))
    assert values == [10.0, 12.0]
    assert farm.last_run.retries >= 1


def test_persistent_crash_raises_clean_error(tmp_path):
    farm = Farm(
        FarmConfig(max_workers=2, cache_dir=tmp_path / "cache", max_retries=1)
    )
    with pytest.raises(FarmError, match="test.crash_always"):
        farm.run_jobs(_jobs("test.crash_always", 2))
    assert farm.last_run is None  # the batch never completed


def test_job_timeout_raises_after_retries(tmp_path):
    farm = Farm(
        FarmConfig(
            max_workers=2,
            cache_dir=tmp_path / "cache",
            job_timeout=0.2,
            max_retries=0,
        )
    )
    with pytest.raises(FarmError, match="test.slow"):
        farm.run_jobs(_jobs("test.slow", 1, {"delay": 2.0}))


def test_unknown_measure_raises(tmp_path):
    farm = Farm(FarmConfig(cache_dir=tmp_path))
    with pytest.raises(FarmError, match="unknown measure"):
        farm.run_jobs([Job("no.such.measure", {})])


def test_metrics_accumulate_across_runs(tmp_path):
    farm = Farm(FarmConfig(cache_dir=tmp_path))
    farm.run_jobs(_jobs("test.double", 2))
    farm.run_jobs(_jobs("test.double", 2))
    assert farm.metrics.jobs == 4
    assert farm.metrics.executed == 2
    assert farm.metrics.cache_hits == 2
    summary = farm.metrics.summary()
    assert summary["hit_ratio"] == 0.5
    assert "cache hits" in farm.metrics.render()


def test_config_validation():
    with pytest.raises(ConfigError):
        FarmConfig(max_workers=0)
    with pytest.raises(ConfigError):
        FarmConfig(max_retries=-1)
    with pytest.raises(ConfigError):
        FarmConfig(job_timeout=0.0)
