"""Hardened scheduling: backoff, the circuit breaker, worker faults."""

import random

import pytest

from repro.errors import ConfigError, FarmError
from repro.farm import Farm, FarmConfig
from repro.farm.jobs import Job
from repro.faults.infra import WorkerFaults, chaos_probe
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

from . import measures_for_tests  # noqa: F401  (registers test.* measures)


def _probe_jobs(n=3):
    return [
        Job(measure="chaos.probe", params={"scale": 1.0}, seed=s)
        for s in range(n)
    ]


def _expected(n=3):
    return [chaos_probe(s) for s in range(n)]


class TestBackoff:
    def test_delays_grow_exponentially_and_cap(self):
        config = FarmConfig(backoff_base=0.1, backoff_max=0.5, backoff_jitter=0)
        rng = random.Random(0)
        delays = [config.backoff_delay(a, rng) for a in (1, 2, 3, 4, 5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_seeded_and_replayable(self):
        config = FarmConfig(backoff_base=0.1, backoff_jitter=0.5)
        first = [config.backoff_delay(a, random.Random(7)) for a in (1, 2)]
        second = [config.backoff_delay(a, random.Random(7)) for a in (1, 2)]
        assert first == second
        # jitter only ever lengthens the delay, bounded by the fraction
        assert all(0.1 * 2 ** (a - 1) <= d <= 0.1 * 2 ** (a - 1) * 1.5
                   for a, d in zip((1, 2), first))

    def test_new_knobs_are_validated(self):
        with pytest.raises(ConfigError):
            FarmConfig(backoff_base=-0.1)
        with pytest.raises(ConfigError):
            FarmConfig(backoff_base=1.0, backoff_max=0.5)
        with pytest.raises(ConfigError):
            FarmConfig(backoff_jitter=-1)
        with pytest.raises(ConfigError):
            FarmConfig(breaker_threshold=-1)


class TestRetryAccounting:
    def test_retry_events_carry_attempt_and_delay(self, tmp_path):
        params = {"sentinel": str(tmp_path / "sentinel")}
        farm = Farm(FarmConfig(
            max_workers=2, cache_dir=tmp_path / "cache",
            max_retries=2, backoff_base=0.01,
        ))
        farm.run_jobs(
            [Job("test.crash_once", dict(params), seed=s) for s in (5, 6)]
        )
        assert farm.last_run.retries >= 1
        attempt, delay = farm.last_run.retry_events[0]
        assert attempt == 1
        assert delay >= 0.01


class TestWorkerFaults:
    def test_kill_on_first_attempt_is_absorbed_by_retry(self, tmp_path):
        farm = Farm(FarmConfig(
            max_workers=2, cache_dir=tmp_path / "cache",
            max_retries=2, backoff_base=0.01,
            worker_faults=WorkerFaults(kills=frozenset({0})),
        ))
        assert farm.run_jobs(_probe_jobs()) == _expected()
        assert farm.last_run.retries >= 1

    def test_hang_is_absorbed_via_timeout_retry(self, tmp_path):
        farm = Farm(FarmConfig(
            max_workers=2, cache_dir=tmp_path / "cache",
            job_timeout=0.5, max_retries=2, backoff_base=0.01,
            worker_faults=WorkerFaults(
                hangs=frozenset({1}), hang_secs=3.0
            ),
        ))
        assert farm.run_jobs(_probe_jobs()) == _expected()
        assert farm.last_run.retries >= 1

    def test_from_plan_aggregates_worker_specs(self):
        plan = FaultPlan(specs=(
            FaultSpec(FaultKind.WORKER_KILL, count=2, start=0, every=2),
            FaultSpec(FaultKind.WORKER_HANG, start=1,
                      params={"hang_secs": 3.0, "persistent": True}),
        ))
        faults = WorkerFaults.from_plan(plan)
        assert faults.kills == frozenset({0, 2})
        assert faults.hangs == frozenset({1})
        assert faults.hang_secs == 3.0
        assert faults.persistent

    def test_from_plan_without_worker_specs_is_none(self):
        assert WorkerFaults.from_plan(FaultPlan()) is None

    def test_transient_faults_fire_only_on_first_attempt(self):
        faults = WorkerFaults(kills=frozenset({0}))
        assert faults.action_for(0, attempt=0) == "kill"
        assert faults.action_for(0, attempt=1) is None
        persistent = WorkerFaults(kills=frozenset({0}), persistent=True)
        assert persistent.action_for(0, attempt=3) == "kill"


class TestCircuitBreaker:
    def test_persistent_kills_trip_the_breaker_to_serial(self, tmp_path):
        farm = Farm(FarmConfig(
            max_workers=2, cache_dir=tmp_path / "cache",
            max_retries=10, backoff_base=0.01, breaker_threshold=2,
            worker_faults=WorkerFaults(
                kills=frozenset({0, 1, 2}), persistent=True
            ),
        ))
        # worker faults only exist on the pool path, so degrading to
        # the master absorbs even a persistent kill schedule
        assert farm.run_jobs(_probe_jobs()) == _expected()
        assert farm.last_run.breaker_tripped
        assert farm.last_run.fallback_serial
        assert farm.last_run.retries == 2  # threshold, then the trip

    def test_disabled_breaker_exhausts_retries_instead(self, tmp_path):
        farm = Farm(FarmConfig(
            max_workers=2, cache_dir=tmp_path / "cache",
            max_retries=1, backoff_base=0.01,
            worker_faults=WorkerFaults(
                kills=frozenset({0, 1, 2}), persistent=True
            ),
        ))
        with pytest.raises(FarmError, match="still failing"):
            farm.run_jobs(_probe_jobs())

    def test_breaker_summary_key_round_trips(self, tmp_path):
        farm = Farm(FarmConfig(
            max_workers=2, cache_dir=tmp_path / "cache",
            max_retries=10, backoff_base=0.01, breaker_threshold=1,
            worker_faults=WorkerFaults(
                kills=frozenset({0, 1, 2}), persistent=True
            ),
        ))
        farm.run_jobs(_probe_jobs())
        assert farm.last_run.summary()["breaker_tripped"] is True
        stats = farm.cache.read_stats()
        assert stats["retries"] >= 1
