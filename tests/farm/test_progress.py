"""FarmMetrics: bounded latency accounting with exact summaries."""

from __future__ import annotations

import pytest

from repro.farm.progress import FarmMetrics
from repro.telemetry.registry import TIME_BUCKET_SECS, MetricsRegistry


class TestLatencyHistogram:
    def test_memory_is_bounded_by_buckets_not_jobs(self):
        metrics = FarmMetrics()
        for i in range(50_000):
            metrics.record_execution(0.001 * (i % 100))
        assert metrics.executed == 50_000
        assert len(metrics.latency.counts) == len(TIME_BUCKET_SECS) + 1

    def test_mean_and_max_are_exact(self):
        metrics = FarmMetrics()
        for elapsed in (0.1, 0.2, 0.6):
            metrics.record_execution(elapsed)
        assert metrics.mean_latency_secs == pytest.approx(0.3)
        assert metrics.max_latency_secs == 0.6

    def test_empty_metrics_report_zero(self):
        metrics = FarmMetrics()
        assert metrics.mean_latency_secs == 0.0
        assert metrics.max_latency_secs == 0.0
        assert metrics.hit_ratio == 0.0


class TestMerge:
    def test_merge_folds_latencies(self):
        a, b = FarmMetrics(), FarmMetrics()
        a.record_execution(0.1)
        b.record_execution(0.5)
        b.jobs, b.cache_hits = 3, 2
        a.merge(b)
        assert a.executed == 2
        assert a.mean_latency_secs == pytest.approx(0.3)
        assert a.max_latency_secs == 0.5
        assert (a.jobs, a.cache_hits) == (3, 2)


class TestSummary:
    def test_summary_keys_are_stable(self):
        """`repro farm stats` consumes these keys; they are a contract."""
        metrics = FarmMetrics(workers=2)
        metrics.jobs = 4
        metrics.cache_hits = 1
        metrics.record_execution(0.25)
        summary = metrics.summary()
        assert list(summary) == [
            "workers",
            "jobs",
            "cache_hits",
            "executed",
            "retries",
            "fallback_serial",
            "breaker_tripped",
            "cache_corrupt",
            "poisoned",
            "wall_clock_secs",
            "mean_latency_secs",
            "max_latency_secs",
            "hit_ratio",
        ]
        assert summary["mean_latency_secs"] == 0.25
        assert summary["max_latency_secs"] == 0.25
        assert summary["hit_ratio"] == 0.25

    def test_render_mentions_latency_only_when_executed(self):
        metrics = FarmMetrics()
        assert "latency" not in metrics.render()
        metrics.record_execution(0.5)
        assert "job latency" in metrics.render()


class TestPublish:
    def test_publish_into_registry(self):
        metrics = FarmMetrics(workers=3)
        metrics.jobs = 5
        metrics.cache_hits = 2
        metrics.record_retry(1, 0.05)
        metrics.record_execution(0.1)
        metrics.record_execution(0.3)
        registry = MetricsRegistry()
        metrics.publish(registry)
        snap = registry.snapshot()
        assert snap["farm.workers"] == 3
        assert snap["farm.jobs"] == 5
        assert snap["farm.jobs.cache_hits"] == 2
        assert snap["farm.jobs.executed"] == 2
        # retries are labeled with the attempt number and backoff delay
        assert snap["farm.retries{attempt=1,backoff_secs=0.050}"] == 1
        assert snap["farm.jobs.latency"]["count"] == 2
        assert snap["farm.jobs.latency"]["max"] == 0.3

    def test_breaker_and_corruption_counters_published(self):
        metrics = FarmMetrics()
        metrics.breaker_tripped = True
        metrics.cache_corrupt = 2
        registry = MetricsRegistry()
        metrics.publish(registry)
        snap = registry.snapshot()
        assert snap["farm.breaker_tripped"] == 1
        assert snap["cache.corrupt"] == 2

    def test_publish_accumulates_across_runs(self):
        registry = MetricsRegistry()
        for _ in range(2):
            metrics = FarmMetrics()
            metrics.jobs = 1
            metrics.record_execution(0.1)
            metrics.publish(registry)
        snap = registry.snapshot()
        assert snap["farm.jobs"] == 2
        assert snap["farm.jobs.latency"]["count"] == 2
