"""FarmService: journaled intake, poison quarantine, exactly-once resume."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import repro
from repro.farm import (
    AdmissionConfig,
    FarmConfig,
    FarmService,
    Job,
    JobJournal,
    ServiceConfig,
    SupervisorConfig,
)
from repro.farm.journal import DONE, FAILED, LEASED, POISONED, QUEUED
from repro.farm.service import journal_rows
from repro.farm.supervisor import POISON_FILE
from repro.faults.infra import chaos_probe

import tests.farm.measures_for_tests  # noqa: F401  (registers test.*)


def _service(cache_dir, *, workers: int = 1, **service_kw) -> FarmService:
    return FarmService(
        ServiceConfig(
            farm=FarmConfig(max_workers=workers, cache_dir=cache_dir),
            **service_kw,
        )
    )


def _doubles(n: int) -> list[Job]:
    return [Job("test.double", {}, seed=i) for i in range(n)]


class TestServiceRun:
    def test_run_returns_a_done_ticket_with_values(self, tmp_path):
        service = _service(tmp_path)
        ticket = service.run(_doubles(4), client="t")
        assert ticket.state == "done"
        assert ticket.results == [0.0, 2.0, 4.0, 6.0]
        assert service.journal.counts()[DONE] == 4
        assert service.status()["tickets_completed"] == 1

    def test_unnamed_batches_get_ticket_labels(self, tmp_path):
        service = _service(tmp_path)
        ticket = service.submit(_doubles(1))
        assert ticket.batch == "ticket-1"

    def test_degraded_ticket_is_bit_identical(self, tmp_path):
        service = _service(
            tmp_path / "svc",
            admission=AdmissionConfig(max_queue_depth=2),
        )
        service.submit(_doubles(2), client="a")
        burst = service.submit(
            [Job("test.double", {}, seed=i) for i in range(10, 13)],
            client="b",
        )
        assert burst.degraded
        service.drain()
        # the shed-to-serial lane returned the same bits the pool would
        reference = _service(tmp_path / "ref").run(
            [Job("test.double", {}, seed=i) for i in range(10, 13)]
        )
        assert burst.state == "done"
        assert burst.results == reference.results

    def test_render_status_names_every_plane(self, tmp_path):
        service = _service(tmp_path)
        service.run(_doubles(2))
        rendered = service.render_status()
        for token in ("journal", "queue", "supervisor", "cache"):
            assert token in rendered

    def test_journal_rows_tabulates_entries(self, tmp_path):
        service = _service(tmp_path)
        service.run(_doubles(1), client="cli", batch="b7")
        table = journal_rows(service.journal.entries())
        assert "test.double" in table
        assert "b7" in table
        assert "cli" in table


class TestPoisonQuarantine:
    def test_poisoned_ticket_reports_the_reason(self, tmp_path):
        service = FarmService(
            ServiceConfig(
                farm=FarmConfig(
                    max_workers=2,
                    cache_dir=tmp_path,
                    max_retries=3,
                    backoff_base=0.0,
                ),
                supervisor=SupervisorConfig(
                    poison_strikes=2, cooldown_base=0.0
                ),
            )
        )
        job = Job("test.crash_always", {}, seed=0)
        ticket = service.run([job], client="t")
        assert ticket.state == "poisoned"
        reason = ticket.reasons[job.key()]
        assert reason["code"] == "poisoned"
        assert service.journal.get(job.key()).state == POISONED
        assert (tmp_path / POISON_FILE).exists()
        # the service survives: the next healthy batch still runs
        after = service.run(_doubles(2), client="t")
        assert after.state == "done" and after.results == [0.0, 2.0]


class TestResumeExactlyOnce:
    """Satellite: any SIGKILL point resumes bit-identical, no job twice."""

    def test_every_crash_point_resumes_bit_identical(self, tmp_path):
        n = 4
        expected = [seed * 2.0 for seed in range(n)]
        for k in range(n + 1):
            workdir = tmp_path / f"crash-at-{k}"
            workdir.mkdir()
            counter = workdir / "counter.txt"
            jobs = [
                Job("test.counted", {"counter_file": str(counter)}, seed=i)
                for i in range(n)
            ]
            keys = [job.key() for job in jobs]
            crashed = _service(workdir / "cache")
            # write-ahead: the whole batch is durable before any job runs
            crashed.journal.queue(zip(jobs, keys), batch="b", client="c")
            if k:
                crashed.farm.batch_label = "b"
                crashed.farm.client_id = "c"
                crashed.farm.run_jobs(jobs[:k])  # ...SIGKILL lands here
            revived = _service(workdir / "cache")  # a fresh process
            report = revived.resume()
            assert report["incomplete"] == n - k
            assert report["executed"] == n - k
            assert report["reconciled"] == 0
            # each job executed exactly once across both lives
            executed = sorted(int(s) for s in counter.read_text().split())
            assert executed == list(range(n))
            values = [revived.farm.cache.get(key)[1] for key in keys]
            assert values == expected
            assert revived.journal.counts()[DONE] == n

    def test_crash_between_cache_write_and_commit_reconciles(self, tmp_path):
        counter = tmp_path / "counter.txt"
        job = Job("test.counted", {"counter_file": str(counter)}, seed=5)
        key = job.key()
        crashed = _service(tmp_path / "cache")
        crashed.journal.queue([(job, key)], batch="b", client="c")
        crashed.journal.lease(key)
        # the crash window: value durable, the commit never landed
        crashed.farm.cache.put(key, 10.0, measure=job.measure, seed=job.seed)
        revived = _service(tmp_path / "cache")
        report = revived.resume()
        assert report == {
            "incomplete": 1,
            "reconciled": 1,
            "executed": 0,
            "unreplayable": 0,
        }
        assert not counter.exists()  # reconciled, never re-executed
        assert revived.journal.get(key).state == DONE

    def test_unreplayable_params_fail_cleanly(self, tmp_path):
        service = _service(tmp_path)
        job = Job("test.double", {"handle": object()}, seed=0)
        key = "f" * 64
        service.journal.queue([(job, key)], batch="b", client="c")
        report = FarmService(
            ServiceConfig(farm=FarmConfig(max_workers=1, cache_dir=tmp_path))
        ).resume()
        assert report["unreplayable"] == 1
        entry = JobJournal(tmp_path).get(key)
        assert entry.state == FAILED
        assert entry.reason["code"] == "unreplayable"

    def test_resume_with_a_clean_journal_is_a_noop(self, tmp_path):
        service = _service(tmp_path)
        service.run(_doubles(2))
        report = _service(tmp_path).resume()
        assert report["incomplete"] == 0


class TestRealSigkill:
    """A genuine SIGKILL mid-batch, then resume in a second process."""

    def test_sigkill_mid_batch_then_resume(self, tmp_path):
        cache = tmp_path / "cache"
        sentinel = tmp_path / "kill-sentinel"
        sentinel.write_text("armed")
        script = textwrap.dedent(
            f"""
            from repro.farm import FarmConfig, FarmService, Job, ServiceConfig

            jobs = [
                Job(
                    "chaos.kill_probe",
                    {{"sentinel": {str(sentinel)!r}, "kill_seed": 2}},
                    seed=i,
                )
                for i in range(4)
            ]
            service = FarmService(
                ServiceConfig(
                    farm=FarmConfig(max_workers=1, cache_dir={str(cache)!r})
                )
            )
            service.run(jobs, client="kill")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        proc = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True
        )
        assert proc.returncode == -signal.SIGKILL

        journal = JobJournal(cache)
        counts = journal.counts()
        assert counts[DONE] == 2  # seeds 0 and 1 committed before the kill
        assert counts[LEASED] == 1  # the victim died holding its lease
        assert counts[QUEUED] == 1  # seed 3 never started

        sentinel.unlink()
        revived = _service(cache)
        report = revived.resume()
        assert report["executed"] == 2
        assert revived.journal.counts()[DONE] == 4
        jobs = [
            Job(
                "chaos.kill_probe",
                {"sentinel": str(sentinel), "kill_seed": 2},
                seed=i,
            )
            for i in range(4)
        ]
        values = [revived.farm.cache.get(job.key())[1] for job in jobs]
        assert values == [chaos_probe(i) for i in range(4)]
