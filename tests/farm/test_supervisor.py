"""Worker supervision: strikes, poison quarantine, flap, cool-down."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.farm import SupervisorConfig, WorkerSupervisor
from repro.farm.supervisor import (
    POISON_FILE,
    STRIKE_DEADLINE,
    STRIKE_WORKER_CRASH,
)
from repro.telemetry.registry import MetricsRegistry


class TestPoisoning:
    def test_strikes_in_one_generation_do_not_poison(self):
        supervisor = WorkerSupervisor(SupervisorConfig(poison_strikes=2))
        assert (
            supervisor.record_strike("k", STRIKE_WORKER_CRASH, "died", 0)
            is None
        )
        # same pool generation again: could still be a flaky worker
        assert (
            supervisor.record_strike("k", STRIKE_WORKER_CRASH, "died", 0)
            is None
        )
        assert supervisor.poisoned == {}

    def test_two_distinct_generations_poison_the_job(self):
        supervisor = WorkerSupervisor(SupervisorConfig(poison_strikes=2))
        supervisor.record_strike("k", STRIKE_WORKER_CRASH, "died", 0)
        reason = supervisor.record_strike("k", STRIKE_DEADLINE, "hung", 1)
        assert reason is not None
        assert reason["code"] == "poisoned"
        assert reason["workers_killed"] == 2
        assert len(reason["strikes"]) == 2
        assert "2 distinct worker generations" in reason["verdict"]
        assert supervisor.poisoned["k"] is reason

    def test_strikes_are_attributed_per_job(self):
        supervisor = WorkerSupervisor(SupervisorConfig(poison_strikes=2))
        supervisor.record_strike("a", STRIKE_WORKER_CRASH, "", 0)
        supervisor.record_strike("b", STRIKE_WORKER_CRASH, "", 1)
        assert supervisor.poisoned == {}
        assert len(supervisor.strikes_for("a")) == 1
        assert len(supervisor.strikes_for("b")) == 1

    def test_poison_is_ledgered_as_jsonl(self, tmp_path):
        supervisor = WorkerSupervisor(
            SupervisorConfig(poison_strikes=2), ledger_dir=tmp_path
        )
        supervisor.record_strike("k", STRIKE_WORKER_CRASH, "", 0)
        supervisor.record_strike("k", STRIKE_WORKER_CRASH, "", 1)
        lines = (tmp_path / POISON_FILE).read_text().splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["code"] == "poisoned"
        assert record["job_key"] == "k"
        assert "ts" in record

    def test_poison_ledger_rotates_under_its_budget(self, tmp_path):
        supervisor = WorkerSupervisor(
            SupervisorConfig(poison_strikes=1, poison_ledger_bytes=400),
            ledger_dir=tmp_path,
        )
        for i in range(8):
            supervisor.record_strike(f"job-{i}", STRIKE_WORKER_CRASH, "", i)
        ledger = tmp_path / POISON_FILE
        assert ledger.stat().st_size <= 800  # budget + one generation
        assert (tmp_path / f"{POISON_FILE}.1").exists()


class TestFlapAndCooldown:
    def test_flap_needs_consecutive_no_progress_rounds(self):
        supervisor = WorkerSupervisor(SupervisorConfig(flap_threshold=2))
        supervisor.record_round(progressed=False)
        assert not supervisor.flapping
        supervisor.record_round(progressed=False)
        assert supervisor.flapping

    def test_progress_resets_the_flap_count(self):
        supervisor = WorkerSupervisor(SupervisorConfig(flap_threshold=3))
        supervisor.record_round(progressed=False)
        supervisor.record_round(progressed=False)
        # a failed round that still retired jobs restarts the streak at 1
        supervisor.record_round(progressed=True)
        assert supervisor.consecutive_failures == 1
        supervisor.record_round(progressed=False)
        assert not supervisor.flapping
        supervisor.record_progress()
        assert supervisor.consecutive_failures == 0

    def test_cooldown_grows_exponentially_to_the_cap(self):
        config = SupervisorConfig(cooldown_base=0.1, cooldown_max=0.5)
        assert config.cooldown(1) == pytest.approx(0.1)
        assert config.cooldown(2) == pytest.approx(0.2)
        assert config.cooldown(3) == pytest.approx(0.4)
        assert config.cooldown(4) == pytest.approx(0.5)  # capped

    def test_zero_base_means_no_cooldown(self):
        supervisor = WorkerSupervisor(SupervisorConfig(cooldown_base=0.0))
        assert supervisor.record_round(progressed=False) == 0.0
        assert supervisor.cooldown_secs_total == 0.0


class TestHeartbeats:
    def test_envelopes_feed_liveness(self):
        supervisor = WorkerSupervisor()
        supervisor.observe_heartbeat({"worker_pid": 101})
        supervisor.observe_heartbeat({"worker_pid": 102})
        supervisor.observe_heartbeat({"worker_pid": 101})
        assert supervisor.heartbeats == 3
        assert supervisor.workers_seen == 2
        assert supervisor.stale_workers() == []

    def test_stale_workers_age_out(self):
        supervisor = WorkerSupervisor(
            SupervisorConfig(heartbeat_stale_secs=10.0)
        )
        supervisor.observe_heartbeat({"worker_pid": 7})
        import time

        assert supervisor.stale_workers(now=time.monotonic() + 11) == [7]

    def test_garbage_envelopes_are_ignored(self):
        supervisor = WorkerSupervisor()
        supervisor.observe_heartbeat(None)
        supervisor.observe_heartbeat({"no_pid": True})
        supervisor.observe_heartbeat({"worker_pid": "not-an-int"})
        assert supervisor.heartbeats == 0


class TestConfigAndReporting:
    def test_deadline_prefers_the_farm_timeout(self):
        supervisor = WorkerSupervisor(SupervisorConfig(deadline_secs=5.0))
        assert supervisor.effective_deadline(2.0) == 2.0
        assert supervisor.effective_deadline(None) == 5.0
        assert WorkerSupervisor().effective_deadline(None) is None

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SupervisorConfig(poison_strikes=0)
        with pytest.raises(ConfigError):
            SupervisorConfig(flap_threshold=0)
        with pytest.raises(ConfigError):
            SupervisorConfig(cooldown_base=1.0, cooldown_max=0.5)
        with pytest.raises(ConfigError):
            SupervisorConfig(deadline_secs=0)

    def test_publish_and_summary(self):
        supervisor = WorkerSupervisor(SupervisorConfig(poison_strikes=2))
        supervisor.record_strike("k", STRIKE_WORKER_CRASH, "", 0)
        supervisor.record_strike("k", STRIKE_WORKER_CRASH, "", 1)
        supervisor.record_round(progressed=False)
        supervisor.observe_heartbeat({"worker_pid": 9})
        summary = supervisor.summary()
        assert summary["poisoned"] == 1
        assert summary["strikes"] == 2
        assert summary["restarts"] == 1
        registry = MetricsRegistry()
        supervisor.publish(registry)
        snap = registry.snapshot()
        assert snap["farm.supervisor.poisoned"] == 1
        assert snap["farm.supervisor.strikes"] == 2
        assert snap["farm.supervisor.restarts"] == 1
        assert snap["farm.supervisor.heartbeats"] == 1
        assert snap["farm.supervisor.workers_seen"] == 1
