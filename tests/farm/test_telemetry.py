"""Cross-process telemetry: worker envelopes, span round-trips, merging.

The farm is the only place telemetry crosses a process boundary, so the
contracts pinned here are the distributed-observability story end to
end: a worker's spans and metrics ride home on the job result, the
master folds them under ``farm.worker.*``, parent/child span links
survive pickling, and an envelope the master cannot merge fails loudly
instead of vanishing.
"""

from __future__ import annotations

import logging
import pickle
import time

import pytest

import tests.farm.measures_for_tests  # noqa: F401  (registers test.* measures)
from repro.farm import Farm, FarmConfig, Job
from repro.farm.registry import instrumented_execute
from repro.telemetry.session import (
    TelemetrySession,
    activate,
    active,
    deactivate,
)
from repro.telemetry.spans import spans_from_dicts


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert active() is None, "a telemetry session leaked into this test"
    yield
    if active() is not None:  # pragma: no cover - cleanup on test failure
        deactivate()


def _jobs(measure, n, base_seed=0):
    return [Job(measure, {}, seed=base_seed + i) for i in range(n)]


class TestInstrumentedExecute:
    CTX = {"run_id": "runabc", "job_key": "deadbeef", "profile": False}

    def test_value_and_envelope_shape(self):
        import os

        value, elapsed, envelope = instrumented_execute(
            self.CTX, "test.double", {}, seed=21
        )
        assert value == 42.0
        assert elapsed >= 0.0
        assert envelope["v"] == 1
        assert envelope["worker_pid"] == os.getpid()
        assert envelope["run_id"] == "runabc"
        assert envelope["job_key"] == "deadbeef"
        assert active() is None  # the per-job session was torn down

    def test_span_parent_links_survive_pickling(self):
        _, _, envelope = instrumented_execute(
            self.CTX, "test.spanned", {}, seed=5
        )
        wire = pickle.loads(pickle.dumps(envelope))
        spans = spans_from_dicts(wire["spans"])
        by_name = {s.name: s for s in spans}
        job = by_name["worker.job"]
        inner = by_name["test.inner"]
        assert job.parent_id is None
        assert inner.parent_id == job.span_id
        assert job.args["run_id"] == "runabc"
        assert job.args["job_key"] == "deadbeef"
        assert job.args["measure"] == "test.spanned"
        assert job.args["seed"] == 5
        assert inner.args == {"seed": 5}

    def test_worker_metrics_travel_in_the_envelope(self):
        _, _, envelope = instrumented_execute(
            self.CTX, "test.metered", {}, seed=9
        )
        series = envelope["metrics"]["series"]
        assert series["test.work"] == {"kind": "counter", "value": 10}
        assert series["test.sizes"]["kind"] == "histogram"
        assert series["test.sizes"]["count"] == 1


class TestFarmRoundTrip:
    def _pool_ran(self, farm) -> bool:
        # restricted environments degrade to serial; these assertions
        # only hold when a real pool executed the batch
        return not farm.last_run.fallback_serial

    def test_worker_spans_reach_the_master_session(self, tmp_path):
        session = activate(TelemetrySession())
        try:
            farm = Farm(FarmConfig(cache_dir=tmp_path, max_workers=2))
            values = farm.run_jobs(_jobs("test.spanned", 4))
        finally:
            deactivate()
        assert values == [0.0, 2.0, 4.0, 6.0]
        if not self._pool_ran(farm):  # pragma: no cover - restricted env
            pytest.skip("no process pool available")

        assert session.worker_spans, "no worker lanes came home"
        jobs_seen = 0
        for lanes in session.worker_spans.values():
            for shift_us, spans in lanes:
                assert shift_us >= 0.0
                by_name = {s.name: s for s in spans}
                job = by_name["worker.job"]
                inner = by_name["test.inner"]
                assert inner.parent_id == job.span_id
                assert job.args["run_id"] == session.run_id
                assert job.args["job_key"]
                jobs_seen += 1
        assert jobs_seen == 4

        snapshot = session.metrics.snapshot()
        assert snapshot["farm.telemetry.envelopes"] == 4
        assert snapshot["farm.telemetry.aggregation_secs"] >= 0.0
        # and the master recorded its own side of the batch
        names = {s.name for s in session.spans.spans}
        assert "farm.batch" in names
        assert "farm.submit" in names
        assert "farm.result" in names

    def test_serial_and_pool_aggregate_equal_deterministic_counters(
        self, tmp_path
    ):
        serial_session = activate(TelemetrySession())
        try:
            serial = Farm(
                FarmConfig(cache_dir=tmp_path / "serial", max_workers=1)
            )
            serial_values = serial.run_jobs(_jobs("test.metered", 4, 1))
        finally:
            deactivate()

        pool_session = activate(TelemetrySession())
        try:
            pool = Farm(
                FarmConfig(cache_dir=tmp_path / "pool", max_workers=2)
            )
            pool_values = pool.run_jobs(_jobs("test.metered", 4, 1))
        finally:
            deactivate()

        assert pool_values == serial_values
        if not self._pool_ran(pool):  # pragma: no cover - restricted env
            pytest.skip("no process pool available")

        serial_snapshot = serial_session.metrics.snapshot()
        pool_snapshot = pool_session.metrics.snapshot()
        # serial execution published straight into the master registry;
        # pool workers came home under farm.worker.* — same totals
        assert (
            pool_snapshot["farm.worker.test.work"]
            == serial_snapshot["test.work"]
            == sum(seed + 1 for seed in (1, 2, 3, 4))
        )
        assert (
            pool_snapshot["farm.worker.test.sizes"]
            == serial_snapshot["test.sizes"]
        )

    def test_cache_hits_produce_no_envelopes(self, tmp_path):
        config = FarmConfig(cache_dir=tmp_path, max_workers=2)
        session = activate(TelemetrySession())
        try:
            Farm(config).run_jobs(_jobs("test.double", 3))
        finally:
            deactivate()
        executed = session.metrics.snapshot().get("farm.telemetry.envelopes", 0)

        second_session = activate(TelemetrySession())
        try:
            farm = Farm(config)
            values = farm.run_jobs(_jobs("test.double", 3))
        finally:
            deactivate()
        assert values == [0.0, 2.0, 4.0]
        assert farm.last_run.cache_hits == 3
        snapshot = second_session.metrics.snapshot()
        assert snapshot.get("farm.telemetry.envelopes", 0) == 0
        assert executed in (0, 3)  # 0 if the pool degraded to serial

    def test_pool_without_session_still_returns_plain_values(self, tmp_path):
        farm = Farm(FarmConfig(cache_dir=tmp_path, max_workers=2))
        assert farm.run_jobs(_jobs("test.double", 3)) == [0.0, 2.0, 4.0]
        assert active() is None


class TestFailLoudly:
    def _farm(self, tmp_path):
        farm = Farm(FarmConfig(cache_dir=tmp_path, max_workers=2))
        farm._batch_started = time.perf_counter()
        return farm

    def test_unmergeable_envelope_counts_and_logs_once(self, tmp_path, caplog):
        session = activate(TelemetrySession())
        try:
            farm = self._farm(tmp_path)
            with caplog.at_level(logging.WARNING, logger="repro.farm.pool"):
                farm._absorb_envelope({"v": 99, "spans": []}, elapsed=0.0)
                farm._absorb_envelope({"nonsense": True}, elapsed=0.0)
        finally:
            deactivate()
        assert (
            session.metrics.snapshot()["farm.telemetry_dropped"] == 2
        )
        warnings = [
            r for r in caplog.records
            if "farm.telemetry_dropped" in r.getMessage()
        ]
        assert len(warnings) == 1  # loud, but once per farm

    def test_absorb_without_session_is_a_noop(self, tmp_path):
        farm = self._farm(tmp_path)
        farm._absorb_envelope({"v": 99}, elapsed=0.0)  # must not raise