"""TrapInvariantAuditor: clean state audits clean, tampering is caught.

The invariant under audit is the paper's central bookkeeping rule: a
sampled granule of a registered frame carries a Tapeworm trap *exactly
when* the simulated structure does not hold its line.  Every test
tampers with the machine the way a real hazard would — behind the
simulator's back — and asserts the auditor names the damage.
"""

import numpy as np

from repro._types import Component, PAGE_SIZE
from repro.caches.config import CacheConfig, TLBConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.faults.auditor import TrapInvariantAuditor
from repro.kernel.kernel import Kernel
from repro.machine.dma import DMAEngine
from repro.machine.machine import Machine, MachineConfig


def _booted(config=None):
    machine = Machine(
        MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=512)
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(
        kernel,
        config or TapewormConfig(cache=CacheConfig(size_bytes=2048)),
    )
    tapeworm.install()
    task = kernel.spawn("victim", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    kernel.run_chunk(task, np.arange(0, 8192, 4, dtype=np.int64))
    return machine, kernel, tapeworm, task


class TestCleanState:
    def test_untampered_run_audits_clean(self):
        _, _, tapeworm, _ = _booted()
        report = TrapInvariantAuditor(tapeworm).audit(final=True)
        assert report.clean
        assert report.checks > 0
        assert report.skipped_frames == 0

    def test_tlb_structure_audits_clean(self):
        _, _, tapeworm, _ = _booted(
            TapewormConfig(structure="tlb", tlb=TLBConfig(n_entries=16))
        )
        report = TrapInvariantAuditor(tapeworm).audit(final=True)
        assert report.clean
        assert report.checks > 0


class TestTampering:
    def test_dma_cleared_trap_is_a_missing_trap(self):
        machine, _, tapeworm, _ = _booted()
        trapped = sorted(machine.ecc.tapeworm_granules())
        pa = int(trapped[0]) * 16
        DMAEngine(machine).write(pa, 16)  # unshielded: no Tapeworm hook
        report = TrapInvariantAuditor(tapeworm).audit(final=True)
        assert not report.clean
        divergence = report.first
        assert divergence.kind == "missing_trap"
        assert divergence.granule == pa // 16

    def test_trap_on_resident_line_is_unexpected(self):
        machine, _, tapeworm, task = _booted()
        cache = tapeworm.structure
        space, line_addr = sorted(cache.resident_keys())[0]
        assert space == 0  # physically indexed by default
        machine.ecc.set_trap(line_addr, 16)
        report = TrapInvariantAuditor(tapeworm).audit(final=True)
        kinds = {d.kind for d in report.divergences}
        assert "unexpected_trap" in kinds

    def test_trap_outside_registered_frames_is_an_orphan(self):
        machine, _, tapeworm, _ = _booted()
        # a frame the registry never saw, trapped anyway
        orphan_pa = 8 * 1024 * 1024 - PAGE_SIZE
        assert not tapeworm.registry.is_registered_frame(orphan_pa)
        machine.ecc.set_trap(orphan_pa, 16)
        report = TrapInvariantAuditor(tapeworm).audit(final=True)
        kinds = {d.kind for d in report.divergences}
        assert "orphan_trap" in kinds

    def test_final_sweep_reports_unscrubbed_true_errors(self):
        machine, _, tapeworm, _ = _booted()
        untrapped = [
            pfn * PAGE_SIZE + offset
            for pfn in sorted(tapeworm.registry.registered_frames())
            for offset in range(0, PAGE_SIZE, 16)
            if not machine.ecc.is_tapeworm_trapped(pfn * PAGE_SIZE + offset)
        ]
        single_pa = untrapped[0]
        double_pa = untrapped[1]
        machine.ecc.inject_true_error(single_pa, bit=3)
        machine.ecc.inject_true_error(double_pa, bit=5, double=True)
        report = TrapInvariantAuditor(tapeworm).audit(final=True)
        kinds = {d.kind for d in report.divergences}
        assert "stale_true_error" in kinds
        assert "latent_double_bit" in kinds

    def test_divergence_list_is_bounded(self):
        machine, _, tapeworm, _ = _booted()
        # trap a pile of orphan granules; the report must stay bounded
        base = 8 * 1024 * 1024 - 64 * PAGE_SIZE
        for i in range(64):
            machine.ecc.set_trap(base + i * PAGE_SIZE, 16)
        auditor = TrapInvariantAuditor(tapeworm, max_divergences=8)
        report = auditor.audit(final=True)
        assert len(report.divergences) == 8
        assert report.truncated
