"""The chaos runner's contract: every fault detected or absorbed."""

import json

import pytest

from repro.faults.chaos import ChaosReport, FaultOutcome, run_chaos
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec, default_plan

#: a smaller budget than the CLI default — every machine spec in the
#: plans below fires within the first few chunks
_REFS = 16_000


def _machine_plan(*kinds_and_starts) -> FaultPlan:
    return FaultPlan(
        seed=0xFA017,
        audit_every=1,
        specs=tuple(
            FaultSpec(kind, start=start) for kind, start in kinds_and_starts
        ),
    )


class TestMachinePlane:
    def test_dma_and_spurious_trap_are_detected_by_the_auditor(self):
        report = run_chaos(
            _machine_plan(
                (FaultKind.DMA_TRAP_CLEAR, 1),
                (FaultKind.SPURIOUS_TRAP, 2),
            ),
            refs=_REFS,
        )
        assert report.ok
        resolutions = {o.kind: o.resolution for o in report.outcomes}
        assert resolutions["dma_trap_clear"] == "detected:auditor"
        assert resolutions["spurious_trap"] == "detected:auditor"
        assert report.audits > 0
        assert report.audit_checks > 0

    def test_ecc_faults_are_detected_or_scrubbed(self):
        report = run_chaos(
            _machine_plan(
                (FaultKind.ECC_SINGLE, 1),
                (FaultKind.ECC_DOUBLE, 2),
            ),
            refs=_REFS,
        )
        assert report.ok
        resolutions = {o.kind: o.resolution for o in report.outcomes}
        assert resolutions["ecc_single"] in (
            "absorbed:scrub", "detected:auditor"
        )
        assert resolutions["ecc_double"] in (
            "detected:exception", "detected:auditor"
        )

    def test_trap_clear_drop_is_attributed(self):
        report = run_chaos(
            _machine_plan((FaultKind.TRAP_CLEAR_DROP, 1)), refs=_REFS
        )
        assert report.ok
        (outcome,) = report.outcomes
        assert outcome.resolution in (
            "detected:auditor", "absorbed:refire", "skipped:not_triggered"
        )


class TestInfraPlane:
    def test_worker_and_cache_faults_are_absorbed(self):
        plan = FaultPlan(
            seed=1,
            specs=(
                FaultSpec(FaultKind.WORKER_KILL, start=0),
                FaultSpec(FaultKind.CACHE_GARBLE, start=0),
            ),
        )
        report = run_chaos(plan, refs=_REFS)
        resolutions = {o.kind: o.resolution for o in report.outcomes}
        assert resolutions["worker_kill"] in (
            "absorbed:retry", "skipped:pool_unavailable"
        )
        assert resolutions["cache_garble"] == "absorbed:quarantine"
        assert report.ok


class TestServicePlane:
    def test_sigkill_mid_batch_is_absorbed_by_resume(self):
        plan = FaultPlan(
            seed=2,
            specs=(FaultSpec(FaultKind.SERVICE_CRASH, start=2),),
        )
        report = run_chaos(plan, refs=_REFS)
        (outcome,) = report.outcomes
        assert outcome.resolution == "absorbed:resume"
        assert outcome.plane == "service"
        assert report.ok

    def test_poison_storm_is_quarantined(self):
        plan = FaultPlan(
            seed=3,
            specs=(
                FaultSpec(FaultKind.POISON_STORM, start=0, count=2, every=1),
            ),
        )
        report = run_chaos(plan, refs=_REFS)
        (outcome,) = report.outcomes
        assert outcome.resolution in (
            "absorbed:quarantine", "skipped:pool_unavailable"
        )
        if outcome.resolution == "absorbed:quarantine":
            assert outcome.applied == 2
        assert report.ok

    def test_gc_reader_race_resolves_to_a_clean_miss(self):
        plan = FaultPlan(
            seed=4,
            specs=(FaultSpec(FaultKind.GC_READER_RACE, start=0),),
        )
        report = run_chaos(plan, refs=_REFS)
        (outcome,) = report.outcomes
        assert outcome.resolution == "absorbed:miss"
        assert report.ok


class TestFullDefaultPlan:
    @pytest.mark.slow
    def test_default_plan_has_no_silent_faults(self):
        report = run_chaos(default_plan(), refs=24_000)
        assert report.ok, report.render()
        exercised = {o.kind for o in report.outcomes}
        assert exercised == {kind.value for kind in FaultKind}


class TestReport:
    def test_report_serializes_and_renders(self):
        report = ChaosReport(
            workload="mpeg_play", refs=1, seed=0, plan={"seed": 0},
            outcomes=[
                FaultOutcome("ecc_single", "machine", "absorbed:scrub"),
                FaultOutcome("worker_kill", "infra", "SILENT", detail="bad"),
            ],
        )
        assert not report.ok
        assert [o.kind for o in report.silent_faults] == ["worker_kill"]
        payload = json.loads(report.dumps())
        assert payload["ok"] is False
        assert payload["outcomes"][1]["silent"] is True
        rendered = report.render()
        assert "VIOLATED" in rendered
        assert "worker_kill" in rendered

    def test_clean_report_renders_ok(self):
        report = ChaosReport(
            workload="mpeg_play", refs=1, seed=0, plan={"seed": 0},
            outcomes=[
                FaultOutcome("ecc_single", "machine", "detected:auditor"),
            ],
        )
        assert report.ok
        assert "contract  : OK" in report.render()
