"""MachineFaultInjector: per-class effects and (plan, seed) replay."""

import numpy as np
import pytest

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.faults.injector import MachineFaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


def _booted():
    machine = Machine(
        MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=512)
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(
        kernel, TapewormConfig(cache=CacheConfig(size_bytes=2048))
    )
    tapeworm.install()
    task = kernel.spawn("victim", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    vas = np.arange(0, 8192, 4, dtype=np.int64)
    kernel.run_chunk(task, vas)
    return machine, kernel, tapeworm, task, vas


def _plan(kind: FaultKind, start: int = 0) -> FaultPlan:
    return FaultPlan(specs=(FaultSpec(kind, start=start),), seed=7)


def _fire(tapeworm, plan, task, vas, chunks: int = 1):
    injector = MachineFaultInjector(tapeworm, plan, trial_seed=0)
    injector.arm()
    for _ in range(chunks):
        injector.on_chunk(task.tid, task.component, vas)
    return injector


class TestPerKind:
    def test_ecc_single_lands_on_an_untrapped_granule(self):
        machine, _, tapeworm, task, vas = _booted()
        injector = _fire(tapeworm, _plan(FaultKind.ECC_SINGLE), task, vas)
        assert injector.injections_applied(FaultKind.ECC_SINGLE) == 1
        entry = injector.ledger[0]
        assert entry.pa is not None
        assert not machine.ecc.is_tapeworm_trapped(entry.pa)
        assert machine.ecc.true_error_granules()[entry.granule] == 1

    def test_ecc_double_plants_two_bits(self):
        machine, _, tapeworm, task, vas = _booted()
        injector = _fire(tapeworm, _plan(FaultKind.ECC_DOUBLE), task, vas)
        entry = injector.ledger[0]
        assert entry.applied
        assert machine.ecc.true_error_granules()[entry.granule] == 2

    def test_dma_clear_erases_a_planted_trap(self):
        machine, _, tapeworm, task, vas = _booted()
        injector = _fire(tapeworm, _plan(FaultKind.DMA_TRAP_CLEAR), task, vas)
        entry = injector.ledger[0]
        assert entry.applied
        assert not machine.ecc.is_tapeworm_trapped(entry.pa)

    def test_spurious_trap_lands_on_a_resident_line(self):
        machine, _, tapeworm, task, vas = _booted()
        injector = _fire(tapeworm, _plan(FaultKind.SPURIOUS_TRAP), task, vas)
        entry = injector.ledger[0]
        assert entry.applied
        assert machine.ecc.is_tapeworm_trapped(entry.pa)
        assert tapeworm.structure.contains(0, entry.pa)

    def test_trap_clear_drop_swallows_the_next_clear(self):
        machine, kernel, tapeworm, task, vas = _booted()
        injector = _fire(tapeworm, _plan(FaultKind.TRAP_CLEAR_DROP), task, vas)
        assert injector.dropped_clears == []  # armed, nothing dropped yet
        # the next chunk's first miss clears a trap — that clear is lost
        kernel.run_chunk(task, np.arange(8192, 12288, 4, dtype=np.int64))
        assert len(injector.dropped_clears) == 1
        pa, _size = injector.dropped_clears[0]
        entry = injector.ledger[0]
        assert entry.pa == pa  # the ledger was backfilled on consumption
        assert "dropped tw_clear_trap" in entry.detail

    def test_disarm_restores_the_primitive(self):
        _, _, tapeworm, task, vas = _booted()
        original = tapeworm.primitives.tw_clear_trap
        injector = _fire(tapeworm, _plan(FaultKind.TRAP_CLEAR_DROP), task, vas)
        assert tapeworm.primitives.tw_clear_trap != original
        injector.disarm()
        assert tapeworm.primitives.tw_clear_trap == original

    def test_infra_kind_is_rejected(self):
        _, _, tapeworm, task, vas = _booted()
        plan = _plan(FaultKind.WORKER_KILL)
        injector = MachineFaultInjector(tapeworm, plan, trial_seed=0)
        # infra specs never enter the machine schedule
        assert injector._schedule == {}


class TestLedgerCap:
    def _injector(self):
        _, _, tapeworm, _, _ = _booted()
        return MachineFaultInjector(
            tapeworm, _plan(FaultKind.ECC_SINGLE), trial_seed=0
        )

    def test_ledger_rotates_but_counts_stay_exact(self, caplog):
        from repro.faults.injector import LEDGER_CAP, Injection

        injector = self._injector()
        total = LEDGER_CAP * 2 + 10
        with caplog.at_level("WARNING", logger="repro.faults.injector"):
            for i in range(total):
                injector._ledger_append(
                    Injection(FaultKind.ECC_SINGLE, chunk_index=i, detail="x")
                )
        assert len(injector.ledger) <= LEDGER_CAP
        assert injector.ledger_rotations >= 2
        # rotation loses narrative detail, never counts
        assert injector.injections_applied() == total
        assert injector.injections_applied(FaultKind.ECC_SINGLE) == total
        # the survivors are the newest entries
        assert injector.ledger[-1].chunk_index == total - 1
        warned = [
            r for r in caplog.records if "rotating" in r.getMessage()
        ]
        assert len(warned) == 1  # log-once: later rotations are silent

    def test_unapplied_entries_are_kept_but_not_counted(self):
        from repro.faults.injector import Injection

        injector = self._injector()
        injector._ledger_append(
            Injection(
                FaultKind.ECC_SINGLE, chunk_index=0, detail="no target",
                applied=False,
            )
        )
        assert len(injector.ledger) == 1
        assert injector.injections_applied() == 0


class TestReplay:
    def test_same_plan_and_seed_replays_the_same_ledger(self):
        plan = FaultPlan(
            specs=(
                FaultSpec(FaultKind.ECC_SINGLE, count=2, start=0, every=1),
                FaultSpec(FaultKind.SPURIOUS_TRAP, start=1),
            ),
            seed=99,
        )
        ledgers = []
        for _ in range(2):
            _, _, tapeworm, task, vas = _booted()
            injector = _fire(tapeworm, plan, task, vas, chunks=2)
            ledgers.append(
                [(e.kind, e.chunk_index, e.pa, e.detail) for e in injector.ledger]
            )
        assert ledgers[0] == ledgers[1]

    def test_different_plan_seed_diverges(self):
        results = []
        for seed in (1, 2):
            _, _, tapeworm, task, vas = _booted()
            plan = FaultPlan(
                specs=(FaultSpec(FaultKind.ECC_SINGLE),), seed=seed
            )
            injector = _fire(tapeworm, plan, task, vas)
            results.append(injector.ledger[0].pa)
        assert results[0] != results[1]
