"""FaultPlan: schedules, serialization, validation."""

import pytest

from repro.errors import ConfigError
from repro.faults.plan import (
    FaultKind,
    FaultPlan,
    FaultPlane,
    FaultSpec,
    default_plan,
    load_plan,
)


class TestFaultSpec:
    def test_occurrences_expand_the_schedule(self):
        spec = FaultSpec(kind=FaultKind.ECC_SINGLE, count=3, start=2, every=5)
        assert spec.occurrences() == (2, 7, 12)

    def test_single_occurrence_needs_no_stride(self):
        spec = FaultSpec(kind=FaultKind.ECC_DOUBLE, start=4)
        assert spec.occurrences() == (4,)

    def test_zero_stride_stacks_repeats_at_start(self):
        spec = FaultSpec(kind=FaultKind.ECC_SINGLE, count=2, start=3, every=0)
        assert spec.occurrences() == (3, 3)

    def test_negative_schedule_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind=FaultKind.ECC_SINGLE, start=-1)
        with pytest.raises(ConfigError):
            FaultSpec(kind=FaultKind.ECC_SINGLE, count=0)


class TestPlaneSplit:
    def test_every_kind_has_exactly_one_plane(self):
        for kind in FaultKind:
            assert kind.plane in (
                FaultPlane.MACHINE, FaultPlane.INFRA, FaultPlane.SERVICE
            )

    def test_plan_splits_by_plane(self):
        plan = default_plan()
        machine = {spec.kind for spec in plan.machine_specs()}
        infra = {spec.kind for spec in plan.infra_specs()}
        service = {spec.kind for spec in plan.service_specs()}
        assert not machine & infra
        assert not machine & service
        assert not infra & service
        assert machine | infra | service == set(FaultKind)


class TestSerialization:
    def test_round_trip_is_identity(self):
        plan = default_plan()
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_load_plan_reads_dumps(self, tmp_path):
        plan = default_plan(seed=1234)
        path = tmp_path / "plan.json"
        path.write_text(plan.dumps())
        assert load_plan(path) == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan.from_dict(
                {"seed": 0, "faults": [{"kind": "gamma_ray"}]}
            )

    def test_default_plan_covers_every_fault_kind(self):
        kinds = {spec.kind for spec in default_plan().specs}
        assert kinds == set(FaultKind)
