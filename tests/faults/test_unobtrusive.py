"""The fault subsystem must be invisible when disabled.

The acceptance bar: with no fault session active (or a session whose
plan schedules no machine faults), simulation results are bit-identical
to a build without the subsystem.  These tests pin that — the baseline
numbers here were produced before the faults package existed and must
never drift while injection is off.
"""

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import FaultInjectionError
from repro.faults.plan import FaultPlan, default_plan
from repro.faults.session import activate, active, deactivate, enabled
from repro.harness.runner import RunOptions, run_trap_driven
from repro.workloads.registry import get_workload


def _run():
    return run_trap_driven(
        get_workload("mpeg_play"),
        TapewormConfig(cache=CacheConfig(size_bytes=4096)),
        RunOptions(total_refs=20_000, trial_seed=0),
    )


class TestBitIdentical:
    def test_no_session_equals_empty_plan_session(self):
        baseline = _run()
        with enabled(FaultPlan()) as session:
            under_faults = _run()
        assert under_faults.stats.total_misses == baseline.stats.total_misses
        assert under_faults.traps == baseline.traps
        assert under_faults.ticks == baseline.ticks
        # the session observed the run without perturbing it
        assert session.last_run is not None
        assert session.last_run.injector.ledger == []

    def test_empty_plan_final_audit_is_clean(self):
        with enabled(FaultPlan()) as session:
            _run()
        report = session.last_run.reports[-1]
        assert report.final
        assert report.clean

    def test_runs_are_deterministic_under_auditing(self):
        """Auditing at every chunk must not change results either."""
        baseline = _run()
        with enabled(FaultPlan(audit_every=1)):
            audited = _run()
        assert audited.stats.total_misses == baseline.stats.total_misses
        assert audited.estimated_misses == baseline.estimated_misses


class TestPinnedExperiments:
    """Table 7/9 numbers with injection off, pinned to the pre-faults
    baseline.  If either drifts, the subsystem stopped being free."""

    def test_table7_smoke_values_pinned(self):
        from repro.experiments.table7 import run_table7

        result = run_table7("smoke", n_trials=3, workloads=("espresso",))
        assert result.stats["espresso"].values == (872, 744, 896)

    def test_table9_quick_values_pinned(self):
        from repro.experiments.table9 import run_table9

        result = run_table9("quick", n_trials=2, sizes_kb=(4,))
        assert result.virtual[4].values == (5728.0, 5728.0)
        assert result.physical[4].values == (5728.0, 5728.0)

    def test_table7_unchanged_under_inactive_session_machinery(self):
        """Even importing and cycling a session leaves the numbers."""
        from repro.experiments.table7 import run_table7

        with enabled(FaultPlan()):
            pass  # activated and deactivated; injection never ran
        result = run_table7("smoke", n_trials=3, workloads=("espresso",))
        assert result.stats["espresso"].values == (872, 744, 896)


class TestSessionSlot:
    def test_activate_deactivate_round_trip(self):
        assert active() is None
        session = activate(default_plan())
        try:
            assert active() is session
        finally:
            assert deactivate() is session
        assert active() is None

    def test_double_activation_is_an_error(self):
        activate(default_plan())
        try:
            with pytest.raises(FaultInjectionError):
                activate(default_plan())
        finally:
            deactivate()

    def test_deactivate_without_session_is_an_error(self):
        with pytest.raises(FaultInjectionError):
            deactivate()

    def test_enabled_scope_always_deactivates(self):
        with pytest.raises(RuntimeError):
            with enabled(default_plan()):
                raise RuntimeError("boom")
        assert active() is None
