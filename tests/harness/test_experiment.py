"""Trial statistics in the paper's Table 7 presentation."""

import pytest

from repro.errors import ConfigError
from repro.harness.experiment import TrialStats, run_trials, stats_of


def test_table7_statistics():
    stats = TrialStats(values=(10.0, 12.0, 14.0, 16.0))
    assert stats.mean == 13.0
    assert stats.minimum == 10.0
    assert stats.maximum == 16.0
    assert stats.value_range == 6.0
    assert stats.stdev == pytest.approx(2.582, rel=1e-3)


def test_percentages_relative_to_mean():
    stats = TrialStats(values=(50.0, 150.0))
    assert stats.mean == 100.0
    assert stats.stdev_pct == pytest.approx(70.7, rel=1e-2)
    assert stats.minimum_pct == pytest.approx(50.0)
    assert stats.maximum_pct == pytest.approx(50.0)
    assert stats.range_pct == pytest.approx(100.0)


def test_single_trial_has_zero_spread():
    stats = TrialStats(values=(42.0,))
    assert stats.stdev == 0.0
    assert stats.value_range == 0.0


def test_zero_mean_percentages_defined():
    stats = TrialStats(values=(0.0, 0.0))
    assert stats.stdev_pct == 0.0


def test_row_keys():
    row = TrialStats(values=(1.0, 2.0)).row()
    assert set(row) == {
        "mean", "s", "s_pct", "min", "min_pct", "max", "max_pct",
        "range", "range_pct",
    }


def test_run_trials_passes_distinct_seeds():
    seen = []
    stats = run_trials(lambda seed: (seen.append(seed), float(seed))[1], 4, base_seed=10)
    assert seen == [10, 11, 12, 13]
    assert stats.n == 4


def test_empty_trials_rejected():
    with pytest.raises(ConfigError):
        TrialStats(values=())
    with pytest.raises(ConfigError):
        run_trials(lambda seed: 0.0, 0)


def test_stats_of_wraps_values():
    assert stats_of([3.0, 5.0]).mean == 4.0


def test_run_trials_rejects_non_integer_counts():
    with pytest.raises(ConfigError):
        run_trials(lambda seed: 0.0, 4.0)
    with pytest.raises(ConfigError):
        run_trials(lambda seed: 0.0, "4")
    with pytest.raises(ConfigError):
        run_trials(lambda seed: 0.0, True)


def test_run_trials_rejects_non_integer_base_seed():
    with pytest.raises(ConfigError):
        run_trials(lambda seed: float(seed), 2, base_seed=1.5)
    with pytest.raises(ConfigError):
        run_trials(lambda seed: float(seed), 2, base_seed=False)
