"""The Monster-analogue monitor."""

import numpy as np
import pytest

from repro._types import HOST_CLOCK_HZ, Component
from repro.harness.monster import Monster
from repro.harness.runner import RunOptions, run_uninstrumented
from repro.workloads.registry import get_workload


def test_counts_instructions_and_time(kernel):
    monster = Monster(kernel)
    task = kernel.spawn("t", Component.USER)
    kernel.run_chunk(task, np.arange(0, 4096, 4, dtype=np.int64))
    assert monster.instructions() == 1024
    assert monster.cycles() > 1024  # CPI > 1 plus fault costs
    assert monster.run_time_secs() == monster.cycles() / HOST_CLOCK_HZ


def test_fractions_sum_to_one(kernel):
    monster = Monster(kernel)
    for name, component in (("u", Component.USER), ("k", None)):
        if component:
            task = kernel.spawn(name, component)
        else:
            task = kernel.tasks.get(0)
        kernel.run_chunk(task, np.arange(0, 2048, 4, dtype=np.int64))
    fractions = monster.component_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert fractions[Component.USER] > 0
    assert fractions[Component.KERNEL] > 0


def test_empty_machine_fractions_are_zero(kernel):
    fractions = Monster(kernel).component_fractions()
    assert all(value == 0.0 for value in fractions.values())


def test_counters_monotone_across_a_run(kernel):
    """Monster reads never decrease as the workload executes — the
    counters are cumulative, like the logic analyzer's."""
    monster = Monster(kernel)
    task = kernel.spawn("t", Component.USER)
    instructions, cycles, seconds = 0, 0, 0.0
    for chunk in range(4):
        base = chunk * 4096
        kernel.run_chunk(task, np.arange(base, base + 4096, 4, dtype=np.int64))
        assert monster.instructions() > instructions
        assert monster.cycles() > cycles
        assert monster.run_time_secs() > seconds
        instructions = monster.instructions()
        cycles = monster.cycles()
        seconds = monster.run_time_secs()
    assert instructions == 4 * 1024


def test_run_time_consistent_with_host_clock(kernel):
    """run_time_secs is exactly cycles / 25 MHz — the DECstation's
    clock rate — at every point during a run."""
    monster = Monster(kernel)
    assert monster.run_time_secs() == 0.0
    task = kernel.spawn("t", Component.USER)
    kernel.run_chunk(task, np.arange(0, 8192, 4, dtype=np.int64))
    assert monster.run_time_secs() == monster.cycles() / HOST_CLOCK_HZ
    assert monster.run_time_secs() * HOST_CLOCK_HZ == pytest.approx(
        monster.cycles()
    )


def test_fractions_sum_to_one_after_full_run():
    """Across a real multi-component workload run, component fractions
    still partition the cycle total."""
    spec = get_workload("mpeg_play")
    booted = run_uninstrumented(spec, RunOptions(total_refs=40_000, trial_seed=2))
    fractions = Monster(booted).component_fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert all(0.0 <= value <= 1.0 for value in fractions.values())


def test_reading_matches_counters():
    spec = get_workload("espresso")
    booted = run_uninstrumented(spec, RunOptions(total_refs=30_000, trial_seed=0))
    monster = Monster(booted)
    reading = monster.reading(spec)
    assert reading.instructions == monster.instructions()
    assert reading.run_time_secs == monster.run_time_secs()
    assert (
        reading.frac_kernel + reading.frac_bsd + reading.frac_x + reading.frac_user
    ) == pytest.approx(1.0)


def test_reading_from_uninstrumented_run():
    spec = get_workload("ousterhout")
    booted = run_uninstrumented(
        spec, RunOptions(total_refs=50_000, trial_seed=1)
    )
    reading = Monster(booted).reading(spec)
    assert reading.workload == "ousterhout"
    assert reading.instructions >= 50_000
    assert reading.user_task_count == 15
    # kernel-heavy workload reads kernel-heavy
    assert reading.frac_kernel > reading.frac_user
