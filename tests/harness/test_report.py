"""TrapRunReport accounting helpers."""

import pytest

from repro._types import Component
from repro.core.report import TrapRunReport


def _report(**kwargs):
    report = TrapRunReport(
        workload="w", configuration="c", trial_seed=0, **kwargs
    )
    return report


def test_total_refs_and_ratios():
    report = _report(refs={Component.USER: 800, Component.KERNEL: 200})
    report.stats.count_miss(Component.USER, 80)
    report.stats.count_miss(Component.KERNEL, 40)
    report.estimated_misses = 120.0
    assert report.total_refs == 1000
    assert report.local_miss_ratio(Component.USER) == pytest.approx(0.1)
    assert report.local_miss_ratio(Component.KERNEL) == pytest.approx(0.2)
    assert report.overall_miss_ratio() == pytest.approx(0.12)


def test_zero_refs_are_safe():
    report = _report()
    assert report.total_refs == 0
    assert report.local_miss_ratio(Component.USER) == 0.0
    assert report.overall_miss_ratio() == 0.0


def test_paper_scale_extrapolation():
    report = _report(scale_factor=1000.0)
    report.estimated_misses = 42.0
    assert report.misses_paper_scale() == 42_000.0
