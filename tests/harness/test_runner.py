"""The run orchestrator under both drivers."""

import pytest

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trace_driven, run_trap_driven
from repro.errors import ConfigError
from repro.workloads.registry import get_workload

SMALL = RunOptions(total_refs=60_000, trial_seed=1)


def _config(**kwargs):
    kwargs.setdefault("cache", CacheConfig(size_bytes=4096))
    return TapewormConfig(**kwargs)


class TestTrapDriven:
    def test_full_run_produces_counts(self):
        report = run_trap_driven(get_workload("espresso"), _config(), SMALL)
        assert report.total_refs >= 60_000 * 0.9
        assert report.stats.total_misses > 0
        assert report.traps == report.stats.total_misses
        assert report.overhead_cycles == report.traps * 246
        assert report.slowdown > 0
        assert report.page_faults > 0

    def test_component_selection_limits_misses(self):
        options = RunOptions(
            total_refs=60_000,
            trial_seed=1,
            simulate=frozenset({Component.KERNEL}),
        )
        report = run_trap_driven(get_workload("espresso"), _config(), options)
        assert report.stats.misses[Component.KERNEL] > 0
        assert report.stats.misses[Component.USER] == 0
        assert report.stats.misses[Component.BSD_SERVER] == 0

    def test_component_fractions_near_table4(self):
        report = run_trap_driven(get_workload("mpeg_play"), _config(), SMALL)
        user_share = report.refs[Component.USER] / report.total_refs
        # time fraction 0.446 with user CPI below average -> ref share higher
        assert user_share == pytest.approx(0.50, abs=0.1)

    def test_fork_heavy_workload_completes(self):
        report = run_trap_driven(
            get_workload("kenbus"),
            _config(),
            RunOptions(total_refs=80_000, trial_seed=2),
        )
        assert report.stats.misses[Component.USER] > 0
        # all 238 user tasks were created and exited
        assert report.workload == "kenbus"

    def test_scale_factor_extrapolates(self):
        spec = get_workload("espresso")
        report = run_trap_driven(spec, _config(), SMALL)
        assert report.scale_factor == pytest.approx(
            534e6 / 60_000, rel=1e-6
        )
        assert report.misses_paper_scale() == pytest.approx(
            report.estimated_misses * report.scale_factor
        )

    def test_sampling_reduces_traps_and_slowdown(self):
        spec = get_workload("mpeg_play")
        full = run_trap_driven(spec, _config(), SMALL)
        sampled = run_trap_driven(spec, _config(sampling=8), SMALL)
        assert sampled.traps < full.traps / 4
        assert sampled.slowdown < full.slowdown / 4
        # but the estimate lands near the full count
        assert sampled.estimated_misses == pytest.approx(
            full.estimated_misses, rel=0.6
        )

    def test_bad_options_rejected(self):
        with pytest.raises(ConfigError):
            RunOptions(total_refs=0)


class TestTraceDriven:
    def test_full_run(self):
        report = run_trace_driven(
            get_workload("espresso"), CacheConfig(size_bytes=4096), 50_000
        )
        assert report.refs_traced == 50_000
        assert report.refs_simulated == 50_000
        assert report.misses > 0
        assert report.slowdown > 10  # the ~20x floor of Figure 2

    def test_sampled_trace_simulates_fewer_refs(self):
        report = run_trace_driven(
            get_workload("espresso"),
            CacheConfig(size_bytes=4096),
            50_000,
            sampling=8,
        )
        assert report.refs_simulated < 50_000 / 4
        assert report.filter_cycles > 0
        # filtering still touched every traced address
        assert report.refs_traced == 50_000

    def test_sampling_barely_reduces_trace_slowdown(self):
        """The paper's contrast: trace-driven sampling still pays trace
        generation + filtering on every address."""
        spec = get_workload("espresso")
        config = CacheConfig(size_bytes=4096)
        full = run_trace_driven(spec, config, 50_000)
        sampled = run_trace_driven(spec, config, 50_000, sampling=8)
        assert sampled.slowdown > full.slowdown / 3
