"""Slowdown computation and table formatting."""

import pytest

from repro.harness.slowdown import (
    cache2000_slowdown,
    normal_run_cycles,
    tapeworm_slowdown,
)
from repro.harness.tables import format_table, pct
from repro.kernel.kernel import COMPONENT_CPI
from repro._types import Component
from repro.workloads.registry import get_workload


def test_normal_cycles_weighted_by_cpi():
    spec = get_workload("mpeg_play")
    cycles = normal_run_cycles(spec, 1_000_000)
    by_hand = 1_000_000 * (
        0.446 * COMPONENT_CPI[Component.USER]
        + 0.273 * COMPONENT_CPI[Component.BSD_SERVER]
        + 0.040 * COMPONENT_CPI[Component.X_SERVER]
        + 0.241 * COMPONENT_CPI[Component.KERNEL]
    )
    assert cycles == pytest.approx(by_hand)


def test_tapeworm_slowdown_definition():
    spec = get_workload("espresso")
    normal = normal_run_cycles(spec, 100_000)
    assert tapeworm_slowdown(normal * 3, spec, 100_000) == pytest.approx(3.0)


def test_cache2000_denominator_scales_to_full_workload():
    """Slowdowns use total wall-clock time even though Pixie traces only
    the user task."""
    spec = get_workload("mpeg_play")
    user_refs = 44_600
    slow = cache2000_slowdown(1_000_000, spec, user_refs)
    equivalent_total = user_refs / spec.meta.frac_user
    assert slow == pytest.approx(
        1_000_000 / normal_run_cycles(spec, int(equivalent_total))
    )


def test_figure2_calibration_sanity():
    """At mpeg_play's published 4 KB miss ratio, the modeled constants
    should land within the band of Figure 2's numbers."""
    from repro.tracing.cache2000 import (
        CACHE2000_CYCLES_PER_HIT,
        CACHE2000_MISS_PREMIUM_CYCLES,
    )
    from repro.tracing.pixie import PIXIE_GENERATION_CYCLES_PER_REF

    spec = get_workload("mpeg_play")
    user_refs = 1_000_000
    # trap-driven at the 1 KB point: miss ratio 0.118, 246-cycle handler
    overhead_tw = 0.118 * user_refs * 246
    slow_tw = cache2000_slowdown(overhead_tw, spec, user_refs)
    assert 4 < slow_tw < 10  # paper: 6.27

    # trace-driven at a large cache: miss ratio ~0
    overhead_c2 = user_refs * (
        PIXIE_GENERATION_CYCLES_PER_REF + CACHE2000_CYCLES_PER_HIT
    )
    slow_c2 = cache2000_slowdown(overhead_c2, spec, user_refs)
    assert 15 < slow_c2 < 30  # paper: ~22


def test_format_table_alignment():
    text = format_table(
        ["Size", "Miss Ratio"], [["1K", 0.118], ["1024K", 0.0]],
        title="Figure 2",
    )
    lines = text.splitlines()
    assert lines[0] == "Figure 2"
    assert "Size" in lines[1]
    assert "0.118" in text


def test_format_table_empty_rows():
    text = format_table(["A"], [])
    assert "A" in text


def test_pct():
    assert pct(42.3) == "(42%)"
