"""Cross-driver validation, as in paper section 4.2:

"we compared Tapeworm miss counts from the user task components of each
workload with Pixie-driven Cache2000 simulations ... the Tapeworm miss
counts for the user portion of the workload were nearly identical to
those reported by Cache2000."

On the simulated machine the comparison can be made *exact*: a
virtually-indexed, unsampled, user-only trap-driven run consumes the same
address stream the tracer emits, so both drivers must report identical
miss counts.
"""

import pytest

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trace_driven, run_trap_driven
from repro.workloads.registry import get_workload

USER_ONLY = frozenset({Component.USER})


@pytest.mark.parametrize("workload", ["espresso", "mpeg_play", "xlisp"])
@pytest.mark.parametrize("size_kb", [1, 4, 16])
def test_user_component_counts_identical(workload, size_kb):
    spec = get_workload(workload)
    cache = CacheConfig(size_bytes=size_kb * 1024, indexing=Indexing.VIRTUAL)
    trap = run_trap_driven(
        spec,
        TapewormConfig(cache=cache),
        RunOptions(total_refs=80_000, trial_seed=3, simulate=USER_ONLY),
    )
    user_refs = trap.refs[Component.USER]
    trace = run_trace_driven(spec, cache, user_refs)
    assert trace.misses == trap.stats.misses[Component.USER]


def test_physical_indexing_differs_from_trace():
    """Pixie traces virtual addresses; a physically-indexed Tapeworm run
    sees page-allocation conflicts a VA-trace simulator cannot — the
    validation limit the paper notes for the system components."""
    spec = get_workload("mpeg_play")
    differed = False
    for seed in (3, 4, 5):
        trap = run_trap_driven(
            spec,
            TapewormConfig(cache=CacheConfig(size_bytes=16 * 1024)),
            RunOptions(
                total_refs=300_000, trial_seed=seed, simulate=USER_ONLY
            ),
        )
        trace = run_trace_driven(
            spec, CacheConfig(size_bytes=16 * 1024), trap.refs[Component.USER]
        )
        if trace.misses != trap.stats.misses[Component.USER]:
            differed = True
    assert differed


def test_trap_driven_sees_what_pixie_cannot():
    """Multi-task + kernel coverage: the completeness claim."""
    report = run_trap_driven(
        get_workload("sdet"),
        TapewormConfig(cache=CacheConfig(size_bytes=4096)),
        RunOptions(total_refs=80_000, trial_seed=1),
    )
    for component in (Component.USER, Component.KERNEL, Component.BSD_SERVER):
        assert report.stats.misses[component] > 0, component
    report = run_trap_driven(
        get_workload("mpeg_play"),
        TapewormConfig(cache=CacheConfig(size_bytes=4096)),
        RunOptions(total_refs=80_000, trial_seed=1),
    )
    for component in Component:
        assert report.stats.misses[component] > 0, component
