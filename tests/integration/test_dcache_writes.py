"""Why data-cache simulation fails on the DECstation — mechanistically.

Section 4.4: "Our attempts to implement data cache simulation on this
particular machine were hindered by its no-allocate-on-write policy,
which causes ECC traps to be cleared without invoking the Tapeworm miss
handlers.  On machines that use an allocate-on-write policy, data cache
simulations are possible [Reinhardt93]."

These tests drive the same write-bearing reference stream through both
machine models and show the measurement corruption appear and vanish.
"""

import numpy as np
import pytest

from repro._types import Component, PAGE_SIZE
from repro.caches.config import CacheConfig
from repro.core.flexibility import StructureKind
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


def _system(allocate_on_write):
    machine = Machine(
        MachineConfig(
            memory_bytes=8 * 1024 * 1024,
            n_vpages=512,
            allocate_on_write=allocate_on_write,
        )
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    kind = (
        StructureKind.DATA_CACHE
        if allocate_on_write
        else StructureKind.INSTRUCTION_CACHE  # install must not refuse
    )
    tapeworm = Tapeworm(
        kernel,
        TapewormConfig(cache=CacheConfig(size_bytes=4096), kind=kind),
    )
    tapeworm.install()
    task = kernel.spawn("job", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    return machine, kernel, tapeworm, task


#: a load-then-store stream over distinct lines, then re-loads
LOADS = np.arange(0, 512, 16, dtype=np.int64)
STORES = np.arange(512, 1024, 16, dtype=np.int64)


def test_stores_erase_traps_on_no_allocate_machine():
    machine, kernel, tapeworm, task = _system(allocate_on_write=False)
    vas = np.concatenate([LOADS, STORES])
    writes = np.array([False] * len(LOADS) + [True] * len(STORES))
    result = kernel.run_chunk(task, vas, writes=writes)
    # loads trapped and were counted; stores erased their traps silently
    assert tapeworm.stats.total_misses == len(LOADS)
    assert result.silent_clears == len(STORES)
    # the corrupted aftermath: re-loading the stored lines does not trap
    # (their traps are gone) even though they were never simulated
    before = tapeworm.stats.total_misses
    kernel.run_chunk(task, STORES)
    assert tapeworm.stats.total_misses == before
    for addr in (int(STORES[0]), int(STORES[-1])):
        assert not tapeworm.structure.contains(task.tid, _pa(machine, task, addr))


def test_write_allocate_machine_counts_store_misses():
    """The WWT situation: allocate-on-write makes stores trap like
    loads, so data caches simulate correctly."""
    machine, kernel, tapeworm, task = _system(allocate_on_write=True)
    vas = np.concatenate([LOADS, STORES])
    writes = np.array([False] * len(LOADS) + [True] * len(STORES))
    result = kernel.run_chunk(task, vas, writes=writes)
    assert tapeworm.stats.total_misses == len(LOADS) + len(STORES)
    assert result.silent_clears == 0


def test_reads_unaffected_by_write_policy():
    machine, kernel, tapeworm, task = _system(allocate_on_write=False)
    kernel.run_chunk(task, LOADS)  # no writes array at all
    assert tapeworm.stats.total_misses == len(LOADS)


def _pa(machine, task, va):
    table = machine.mmu.table(task.tid)
    return table.frame_of(va // PAGE_SIZE) * PAGE_SIZE + va % PAGE_SIZE
