"""True memory errors injected during a live simulated run.

The paper: "While Tapeworm has been inactive ... we have only logged one
true single-bit ECC error during nearly a year of operation.  Even when
Tapeworm is active, it correctly detects true memory errors with high
probability."  Here errors are injected far more often than once a
year, across frames with and without active traps, and every one must
be detected and scrubbed without corrupting the miss counts.
"""

import numpy as np

from repro._types import Component, PAGE_SIZE
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.kernel.kernel import Kernel
from repro.machine.ecc import TrapClass
from repro.machine.machine import Machine, MachineConfig


def test_errors_detected_mid_run_without_corrupting_counts():
    machine = Machine(
        MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=512)
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(
        kernel, TapewormConfig(cache=CacheConfig(size_bytes=2048))
    )
    tapeworm.install()
    task = kernel.spawn("victim", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)

    stream = np.arange(0, 8192, 4, dtype=np.int64)
    kernel.run_chunk(task, stream)  # map + partially cache two pages
    baseline_misses = tapeworm.stats.total_misses

    # Inject single- and double-bit faults across the task's frames,
    # some on lines that are simulated-cache resident (no Tapeworm trap)
    # and some on trapped lines.
    table = machine.mmu.table(task.tid)
    rng = np.random.default_rng(5)
    injected = []
    for index in range(12):
        vpn = int(rng.integers(0, 2))
        offset = int(rng.integers(0, PAGE_SIZE // 16)) * 16
        pa = table.frame_of(vpn) * PAGE_SIZE + offset
        machine.ecc.inject_true_error(
            pa, bit=int(rng.integers(0, 32)), double=index % 3 == 0
        )
        injected.append((vpn * PAGE_SIZE + offset, pa))

    # touch every faulted location again: each must raise a trap that
    # the handler classifies as a true error
    vas = np.array(sorted({va for va, _ in injected}), dtype=np.int64)
    before_errors = tapeworm.true_errors_detected
    kernel.run_chunk(task, vas)
    assert tapeworm.true_errors_detected == before_errors + len(set(
        pa // 16 for _, pa in injected
    ))

    # true errors were scrubbed, not counted as misses, and the
    # trap-complement invariant survived the episode
    assert tapeworm.stats.total_misses == baseline_misses
    cache = tapeworm.structure
    for vpn in table.mapped_vpns():
        pa_page = table.frame_of(int(vpn)) * PAGE_SIZE
        for offset in range(0, PAGE_SIZE, 16):
            trapped = machine.ecc.is_trapped(pa_page + offset)
            cached = cache.contains(task.tid, pa_page + offset)
            assert trapped != cached


def test_error_on_untracked_frame_is_still_classified():
    machine = Machine(
        MachineConfig(memory_bytes=4 * 1024 * 1024, n_vpages=256)
    )
    machine.ecc.inject_true_error(0x20000, bit=7)
    assert machine.ecc.classify(0x20000) is TrapClass.TRUE_SINGLE
    machine.ecc.scrub(0x20000)
    assert not machine.ecc.is_trapped(0x20000)
