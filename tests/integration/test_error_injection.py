"""True memory errors injected during a live simulated run.

The paper: "While Tapeworm has been inactive ... we have only logged one
true single-bit ECC error during nearly a year of operation.  Even when
Tapeworm is active, it correctly detects true memory errors with high
probability."  Here errors are injected far more often than once a
year, across frames with and without active traps.  The contract:
correctable single-bit errors are detected and scrubbed without
corrupting the miss counts; uncorrectable double-bit patterns raise a
:class:`DoubleBitError` carrying the full structured diagnostic — the
machine never limps on past one.
"""

import numpy as np
import pytest

from repro._types import Component, PAGE_SIZE
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.errors import DoubleBitError
from repro.kernel.kernel import Kernel
from repro.machine.ecc import ECCStatus, TrapClass
from repro.machine.machine import Machine, MachineConfig


def _booted(cache_bytes=2048):
    machine = Machine(
        MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=512)
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(
        kernel, TapewormConfig(cache=CacheConfig(size_bytes=cache_bytes))
    )
    tapeworm.install()
    task = kernel.spawn("victim", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    return machine, kernel, tapeworm, task


def test_single_bit_errors_scrubbed_without_corrupting_counts():
    machine, kernel, tapeworm, task = _booted()
    stream = np.arange(0, 8192, 4, dtype=np.int64)
    kernel.run_chunk(task, stream)  # map + partially cache two pages
    baseline_misses = tapeworm.stats.total_misses

    # Inject single-bit faults across the task's frames — one per
    # granule (two singles in one granule would form an uncorrectable
    # pattern), some on lines that are simulated-cache resident (no
    # Tapeworm trap) and some on trapped lines.
    table = machine.mmu.table(task.tid)
    rng = np.random.default_rng(5)
    injected = []
    granules_hit = set()
    while len(injected) < 12:
        vpn = int(rng.integers(0, 2))
        offset = int(rng.integers(0, PAGE_SIZE // 16)) * 16
        pa = table.frame_of(vpn) * PAGE_SIZE + offset
        if pa // 16 in granules_hit:
            continue
        granules_hit.add(pa // 16)
        machine.ecc.inject_true_error(pa, bit=int(rng.integers(0, 32)))
        injected.append((vpn * PAGE_SIZE + offset, pa))

    # touch every faulted location again: each must raise a trap that
    # the handler classifies as a true error and scrubs
    vas = np.array(sorted({va for va, _ in injected}), dtype=np.int64)
    before_errors = tapeworm.true_errors_detected
    kernel.run_chunk(task, vas)
    assert tapeworm.true_errors_detected == before_errors + len(granules_hit)

    # true errors were scrubbed, not counted as misses, and the
    # trap-complement invariant survived the episode
    assert tapeworm.stats.total_misses == baseline_misses
    cache = tapeworm.structure
    for vpn in table.mapped_vpns():
        pa_page = table.frame_of(int(vpn)) * PAGE_SIZE
        for offset in range(0, PAGE_SIZE, 16):
            trapped = machine.ecc.is_trapped(pa_page + offset)
            cached = cache.contains(task.tid, pa_page + offset)
            assert trapped != cached


def test_double_bit_error_raises_with_structured_diagnostic():
    machine, kernel, tapeworm, task = _booted()
    stream = np.arange(0, 4096, 4, dtype=np.int64)
    kernel.run_chunk(task, stream)

    table = machine.mmu.table(task.tid)
    pa = table.frame_of(0) * PAGE_SIZE + 0x40
    machine.ecc.inject_true_error(pa, bit=3, double=True)

    with pytest.raises(DoubleBitError) as excinfo:
        kernel.run_chunk(task, np.array([0x40, 0x44], dtype=np.int64))
    diagnostic = excinfo.value.diagnostic
    assert diagnostic is not None
    assert diagnostic.pa == pa
    assert diagnostic.granule == pa // 16
    assert diagnostic.trap_class is TrapClass.TRUE_DOUBLE
    assert diagnostic.data_bits == (3, 4)
    assert not diagnostic.recoverable
    assert f"{pa:#x}" in str(excinfo.value)
    # the detection was still counted before the machine gave up
    assert tapeworm.true_errors_detected == 1


def test_two_singles_in_one_granule_form_an_uncorrectable_pattern():
    machine, kernel, tapeworm, task = _booted()
    kernel.run_chunk(task, np.arange(0, 1024, 4, dtype=np.int64))
    table = machine.mmu.table(task.tid)
    pa = table.frame_of(0) * PAGE_SIZE + 0x20
    machine.ecc.inject_true_error(pa, bit=7)
    machine.ecc.inject_true_error(pa + 4, bit=19)
    with pytest.raises(DoubleBitError):
        kernel.run_chunk(task, np.array([0x20], dtype=np.int64))


def test_error_on_untracked_frame_is_still_classified():
    machine = Machine(
        MachineConfig(memory_bytes=4 * 1024 * 1024, n_vpages=256)
    )
    machine.ecc.inject_true_error(0x20000, bit=7)
    diagnostic = machine.ecc.diagnose(0x20000)
    assert diagnostic.trap_class is TrapClass.TRUE_SINGLE
    assert diagnostic.status is ECCStatus.SINGLE_BIT
    assert diagnostic.data_bits == (7,)
    assert diagnostic.recoverable
    machine.ecc.scrub(0x20000)
    assert not machine.ecc.is_trapped(0x20000)
