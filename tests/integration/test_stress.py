"""Stress and failure-injection scenarios."""

import numpy as np
import pytest

from repro._types import Component, Indexing, PAGE_SIZE
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig
from repro.workloads.registry import get_workload


class TestPagingPressure:
    """tw_remove_page under real memory pressure: the VM pages out
    mid-simulation and Tapeworm must keep its state consistent."""

    def _tight_system(self, n_frames=24):
        machine = Machine(
            MachineConfig(memory_bytes=n_frames * PAGE_SIZE, n_vpages=256)
        )
        kernel = Kernel(
            machine=machine, alloc_policy="sequential", reserved_frames=2
        )
        tapeworm = Tapeworm(
            kernel, TapewormConfig(cache=CacheConfig(size_bytes=2048))
        )
        tapeworm.install()
        task = kernel.spawn("hog", Component.USER)
        tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
        return machine, kernel, tapeworm, task

    def test_page_out_keeps_invariant(self):
        machine, kernel, tapeworm, task = self._tight_system()
        # touch far more pages than physical memory holds
        rng = np.random.default_rng(1)
        for _ in range(30):
            vpns = rng.integers(0, 64, size=32)
            vas = (vpns * PAGE_SIZE + rng.integers(0, 1024, size=32) * 4)
            kernel.run_chunk(task, np.sort(vas.astype(np.int64)))
        assert kernel.vm.evictions > 0
        # every registered location is trapped xor cached
        table = machine.mmu.table(task.tid)
        cache = tapeworm.structure
        for vpn in table.mapped_vpns():
            pa_page = table.frame_of(int(vpn)) * PAGE_SIZE
            for offset in range(0, PAGE_SIZE, 16):
                trapped = machine.ecc.is_trapped(pa_page + offset)
                cached = cache.contains(task.tid, pa_page + offset)
                assert trapped != cached
        # and nothing evicted remains registered or cached
        assert len(tapeworm.registry) == len(table.mapped_vpns())

    def test_refault_after_page_out_counts_again(self):
        machine, kernel, tapeworm, task = self._tight_system(n_frames=10)
        kernel.run_chunk(task, np.array([0], dtype=np.int64))
        first = tapeworm.stats.total_misses
        # push page 0 out by touching many others
        for vpn in range(1, 12):
            kernel.run_chunk(
                task, np.array([vpn * PAGE_SIZE], dtype=np.int64)
            )
        table = machine.mmu.table(task.tid)
        assert not table.is_mapped(0)
        kernel.run_chunk(task, np.array([0], dtype=np.int64))
        assert tapeworm.stats.total_misses > first


class TestLongRunConsistency:
    @pytest.mark.slow
    def test_multi_task_workload_long_run_invariants(self):
        """A fork-heavy workload over many phases: registry and cache
        stay mutually consistent to the end."""
        report = run_trap_driven(
            get_workload("kenbus"),
            TapewormConfig(
                cache=CacheConfig(
                    size_bytes=8192, indexing=Indexing.VIRTUAL
                )
            ),
            RunOptions(total_refs=200_000, trial_seed=9),
        )
        # all 238 tasks came and went; counts are sane
        assert report.stats.total_misses > 0
        assert report.traps == report.stats.total_misses
        assert report.overhead_cycles == report.traps * 246


class TestDeterminismUnderChunking:
    def test_chunk_size_never_changes_counts(self):
        """The in-order rescan machinery makes chunking invisible."""
        spec = get_workload("espresso")
        counts = set()
        for chunk_refs in (97, 1024, 4096):
            report = run_trap_driven(
                spec,
                TapewormConfig(cache=CacheConfig(size_bytes=2048)),
                RunOptions(
                    total_refs=50_000,
                    trial_seed=3,
                    chunk_refs=chunk_refs,
                    tick_cycles=10**12,  # ticks would shift with chunking
                ),
            )
            counts.add(report.stats.total_misses)
        assert len(counts) == 1
