"""The paper's variance structure (Tables 8, 9, 10).

* Virtually-indexed, unsampled, user-only simulations are bit-identical
  from run to run (Tables 8/9's zero-variance rows).
* Physically-indexed simulations vary with the trial seed through page
  allocation (Table 9).
* Set sampling introduces variance of its own (Table 8).
"""

import pytest

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.workloads.registry import get_workload

USER_ONLY = frozenset({Component.USER})


def _misses(workload, cache, seed, sampling=1, simulate=USER_ONLY, refs=60_000):
    spec = get_workload(workload)
    report = run_trap_driven(
        spec,
        TapewormConfig(cache=cache, sampling=sampling, sampling_seed=seed),
        RunOptions(total_refs=refs, trial_seed=seed, simulate=simulate),
    )
    return report.stats.total_misses


def test_virtual_unsampled_user_only_has_zero_variance():
    """Table 9's virtually-indexed column: s = 0 at every size."""
    cache = CacheConfig(size_bytes=16 * 1024, indexing=Indexing.VIRTUAL)
    counts = {_misses("mpeg_play", cache, seed) for seed in (1, 2, 3)}
    assert len(counts) == 1


def test_physical_indexing_varies_with_page_allocation():
    """Table 9's physically-indexed column: nonzero s above the page
    size."""
    cache = CacheConfig(size_bytes=16 * 1024)
    counts = {
        _misses("mpeg_play", cache, seed, refs=300_000) for seed in (3, 4, 5)
    }
    assert len(counts) > 1


def test_4k_physical_cache_does_not_vary():
    """Table 9's boundary observation: 'any page allocation will appear
    the same because all pages overlap in caches that are 4 K-bytes or
    smaller.'"""
    cache = CacheConfig(size_bytes=4096)
    counts = {_misses("mpeg_play", cache, seed) for seed in (1, 2, 3)}
    assert len(counts) == 1


def test_sampling_introduces_variance_in_virtual_cache():
    """Table 8: with page-allocation effects removed, sampling is the
    remaining variance source."""
    cache = CacheConfig(size_bytes=16 * 1024, indexing=Indexing.VIRTUAL)
    estimates = set()
    for seed in (1, 2, 3):
        spec = get_workload("espresso")
        report = run_trap_driven(
            spec,
            TapewormConfig(cache=cache, sampling=8, sampling_seed=seed),
            RunOptions(total_refs=60_000, trial_seed=seed, simulate=USER_ONLY),
        )
        estimates.add(report.estimated_misses)
    assert len(estimates) > 1


def test_all_activity_virtual_unsampled_nearly_deterministic():
    """Table 10: removing sampling and page allocation leaves only small
    residual OS jitter."""
    cache = CacheConfig(size_bytes=16 * 1024, indexing=Indexing.VIRTUAL)
    counts = [
        _misses("espresso", cache, seed, simulate=frozenset(Component))
        for seed in (1, 2, 3)
    ]
    mean = sum(counts) / len(counts)
    spread = (max(counts) - min(counts)) / mean
    assert spread < 0.10  # small, but system jitter may leave a residue
