"""The kernel facade: boot, forks, exits, execution, clock ticks."""

import numpy as np
import pytest

from repro._types import KERNEL_TID, Component
from repro.errors import KernelError
from repro.kernel.kernel import (
    INTERRUPT_BURST_BYTES,
    INTERRUPT_BURST_PASSES,
    INTERRUPT_MASKED_BYTES,
    Kernel,
)
from repro.kernel.vm import AddressSpaceLayout, Region


def test_boot_creates_system_tasks(kernel):
    assert kernel.tasks.get(KERNEL_TID).name == "mach_kernel"
    assert kernel.bsd_server.component is Component.BSD_SERVER
    assert kernel.x_server.component is Component.X_SERVER
    assert kernel.machine.mmu.has_table(KERNEL_TID)


def test_spawn_and_fork_inheritance(kernel):
    shell = kernel.spawn("shell", Component.USER)
    shell.inherit = 1
    child = kernel.fork(shell.tid, "job")
    assert child.simulate == 1
    assert child.component is Component.USER
    assert kernel.machine.mmu.has_table(child.tid)


def test_exit_task_cleans_up(kernel):
    task = kernel.spawn("t", Component.USER)
    kernel.run_chunk(task, np.array([0, 4096], dtype=np.int64))
    kernel.exit_task(task.tid)
    assert not kernel.machine.mmu.has_table(task.tid)
    with pytest.raises(KernelError):
        kernel.exit_task(KERNEL_TID)


def test_run_chunk_faults_and_executes(kernel):
    task = kernel.spawn("t", Component.USER)
    result = kernel.run_chunk(task, np.arange(0, 8192, 4, dtype=np.int64))
    assert result.n_refs == 2048
    assert result.page_faults == 2
    assert kernel.machine.cpu.refs_by_component[Component.USER] == 2048


def test_clock_tick_runs_interrupt_burst(kernel):
    before = kernel.machine.cpu.refs_by_component[Component.KERNEL]
    result = kernel._clock_tick(2)
    after = kernel.machine.cpu.refs_by_component[Component.KERNEL]
    expected_per_tick = (
        INTERRUPT_MASKED_BYTES // 4
        + (INTERRUPT_BURST_BYTES - INTERRUPT_MASKED_BYTES)
        // 4
        * INTERRUPT_BURST_PASSES
    )
    assert after - before == 2 * expected_per_tick
    assert not kernel.machine.interrupts_masked  # restored


def test_ticks_fire_during_long_runs(kernel):
    kernel.machine.clock.tick_cycles = 5000
    kernel.machine.clock._next_tick = 5000
    task = kernel.spawn("t", Component.USER)
    chunk = np.tile(np.arange(0, 4096, 4, dtype=np.int64), 4)
    total_ticks = 0
    for _ in range(3):
        total_ticks += kernel.run_chunk(task, chunk).ticks
    assert total_ticks >= 2
    assert kernel.tick_results.n_refs > 0


def test_shared_layout_fork_exec(kernel):
    layout = AddressSpaceLayout(
        regions=(Region(name="text", start_vpn=0, n_pages=2, share_key="sh"),)
    )
    a = kernel.spawn("a", Component.USER, layout=layout)
    b = kernel.spawn("b", Component.USER, layout=layout)
    kernel.run_chunk(a, np.array([0], dtype=np.int64))
    kernel.run_chunk(b, np.array([0], dtype=np.int64))
    fa = kernel.machine.mmu.table(a.tid).frame_of(0)
    fb = kernel.machine.mmu.table(b.tid).frame_of(0)
    assert fa == fb
