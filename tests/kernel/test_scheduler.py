"""The quantum scheduler and its variance structure."""

import numpy as np
import pytest

from repro._types import Component
from repro.errors import ConfigError
from repro.kernel.scheduler import Demand, Scheduler


def _demands():
    return [
        Demand("user_task", Component.USER, 0.5),
        Demand("mach_kernel", Component.KERNEL, 0.3),
        Demand("bsd_server", Component.BSD_SERVER, 0.2),
    ]


def _user_total(slices):
    return sum(s.n_refs for s in slices if s.component is Component.USER)


def test_user_share_is_exact():
    scheduler = Scheduler(quantum_refs=1000, system_jitter=0.25)
    slices = list(scheduler.interleave(_demands(), 100_000))
    assert _user_total(slices) == 50_000


def test_user_slices_identical_across_trials():
    """The zero-variance precondition of Tables 8-10: user scheduling
    must not depend on the trial seed."""
    runs = []
    for seed in (1, 2):
        scheduler = Scheduler(
            quantum_refs=1000,
            system_jitter=0.25,
            trial_rng=np.random.default_rng(seed),
        )
        slices = list(scheduler.interleave(_demands(), 50_000))
        runs.append(
            [(s.task_name, s.n_refs) for s in slices if s.component is Component.USER]
        )
    assert runs[0] == runs[1]


def test_system_slices_vary_across_trials():
    runs = []
    for seed in (1, 2):
        scheduler = Scheduler(
            quantum_refs=1000,
            system_jitter=0.25,
            trial_rng=np.random.default_rng(seed),
        )
        slices = list(scheduler.interleave(_demands(), 50_000))
        runs.append(
            [s.n_refs for s in slices if s.component is Component.KERNEL]
        )
    assert runs[0] != runs[1]


def test_no_jitter_is_fully_deterministic():
    runs = []
    for seed in (1, 2):
        scheduler = Scheduler(
            quantum_refs=1000,
            system_jitter=0.0,
            trial_rng=np.random.default_rng(seed),
        )
        slices = list(scheduler.interleave(_demands(), 30_000))
        runs.append([(s.task_name, s.n_refs) for s in slices])
    assert runs[0] == runs[1]


def test_weights_respected_approximately():
    scheduler = Scheduler(quantum_refs=1000, system_jitter=0.1)
    slices = list(scheduler.interleave(_demands(), 200_000))
    kernel = sum(s.n_refs for s in slices if s.component is Component.KERNEL)
    total = sum(s.n_refs for s in slices)
    assert kernel / total == pytest.approx(0.3, rel=0.15)


def test_round_robin_interleaving():
    scheduler = Scheduler(quantum_refs=300, system_jitter=0.0)
    slices = list(scheduler.interleave(_demands(), 3000))
    names = [s.task_name for s in slices[:6]]
    assert names == [
        "user_task", "mach_kernel", "bsd_server",
        "user_task", "mach_kernel", "bsd_server",
    ]


def test_system_only_demands_driven_by_total():
    scheduler = Scheduler(quantum_refs=100, system_jitter=0.0)
    demands = [Demand("mach_kernel", Component.KERNEL, 1.0)]
    slices = list(scheduler.interleave(demands, 1000))
    assert sum(s.n_refs for s in slices) == 1000


def test_bad_arguments_rejected():
    with pytest.raises(ConfigError):
        Scheduler(quantum_refs=0)
    with pytest.raises(ConfigError):
        Scheduler(system_jitter=1.0)
    scheduler = Scheduler()
    with pytest.raises(ConfigError):
        list(scheduler.interleave(_demands(), -1))
    with pytest.raises(ConfigError):
        list(scheduler.interleave([Demand("x", Component.USER, 0.0)], 100))
    with pytest.raises(ConfigError):
        Demand("x", Component.USER, -1.0)


def test_zero_total_yields_nothing():
    scheduler = Scheduler()
    assert list(scheduler.interleave(_demands(), 0)) == []
