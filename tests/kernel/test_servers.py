"""Boot-time address-space layouts for the system tasks."""

from repro.kernel.servers import (
    bsd_server_layout,
    kernel_layout,
    x_server_layout,
)


def test_text_segments_are_shared():
    """Server and kernel text is machine-wide shared: a rebooted
    simulation of the same system reuses the same frames."""
    assert bsd_server_layout().region_named("text").share_key == (
        "bsd_server_text"
    )
    assert x_server_layout().region_named("text").share_key == (
        "x_server_text"
    )
    assert kernel_layout().region_named("text").share_key == "kernel_text"


def test_data_segments_are_private():
    for layout in (bsd_server_layout(), x_server_layout(), kernel_layout()):
        assert layout.region_named("data").share_key is None


def test_kernel_interrupt_region_adjoins_text():
    layout = kernel_layout()
    text = layout.region_named("text")
    interrupt = layout.region_named("interrupt")
    assert interrupt.start_vpn == text.end_vpn
    assert interrupt.n_pages == 1


def test_server_text_sizes_match_documented_footprints():
    assert bsd_server_layout().region_named("text").size_bytes == 384 * 1024
    assert x_server_layout().region_named("text").size_bytes == 256 * 1024
    assert kernel_layout().region_named("text").size_bytes == 256 * 1024
