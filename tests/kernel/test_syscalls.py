"""The user-level syscall boundary (Table 11's control interface)."""

import numpy as np
import pytest

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.errors import TapewormError
from repro.kernel.syscalls import SyscallInterface


@pytest.fixture
def system(kernel):
    tapeworm = Tapeworm(
        kernel, TapewormConfig(cache=CacheConfig(size_bytes=1024))
    )
    tapeworm.install()
    return kernel, SyscallInterface(kernel)


def test_tw_attributes_reaches_tapeworm(system):
    kernel, syscalls = system
    shell = syscalls.spawn_shell()
    syscalls.tw_attributes(shell.tid, simulate=0, inherit=1)
    child = syscalls.fork(shell.tid, "job")
    assert child.simulate == 1


def test_stats_roundtrip(system):
    kernel, syscalls = system
    shell = syscalls.spawn_shell()
    syscalls.tw_attributes(shell.tid, simulate=1, inherit=0)
    kernel.run_chunk(shell, np.arange(0, 256, 4, dtype=np.int64))
    stats = syscalls.tw_read_stats()
    assert stats.total_misses > 0
    syscalls.tw_reset_stats()
    assert syscalls.tw_read_stats().total_misses == 0
    # the earlier snapshot was a copy, unaffected by the reset
    assert stats.total_misses > 0


def test_exit_through_syscalls(system):
    kernel, syscalls = system
    shell = syscalls.spawn_shell()
    task = syscalls.fork(shell.tid, "short")
    syscalls.exit(task.tid)
    assert not kernel.tasks.has_live("short")


def test_calls_require_installed_tapeworm(kernel):
    syscalls = SyscallInterface(kernel)
    with pytest.raises(TapewormError):
        syscalls.tw_attributes(0, 1, 0)
    with pytest.raises(TapewormError):
        syscalls.tw_read_stats()
