"""Tasks and the Tapeworm attribute inheritance rule."""

import pytest

from repro._types import Component
from repro.errors import KernelError, NoSuchTask
from repro.kernel.task import TaskState, TaskTable


@pytest.fixture
def table():
    table = TaskTable()
    table.create("mach_kernel", Component.KERNEL)
    return table


def test_kernel_gets_tid_zero(table):
    assert table.get(0).name == "mach_kernel"
    assert table.get(0).is_kernel


def test_fork_inheritance_rule(table):
    """child.simulate <- parent.inherit; child.inherit <- parent.inherit"""
    shell = table.create("shell", Component.USER)
    shell.simulate = 0
    shell.inherit = 1
    child = table.create("workload", Component.USER, parent_tid=shell.tid)
    assert child.simulate == 1
    assert child.inherit == 1
    grandchild = table.create("sub", Component.USER, parent_tid=child.tid)
    assert grandchild.simulate == 1  # propagates down the whole tree


def test_simulate_1_inherit_0_covers_only_self(table):
    task = table.create("kernel_pages", Component.USER)
    task.simulate = 1
    task.inherit = 0
    child = table.create("child", Component.USER, parent_tid=task.tid)
    assert child.simulate == 0
    assert child.inherit == 0


def test_children_recorded(table):
    shell = table.create("shell", Component.USER)
    a = table.create("a", Component.USER, parent_tid=shell.tid)
    b = table.create("b", Component.USER, parent_tid=a.tid)
    assert shell.children == [a.tid]
    descendants = {t.tid for t in table.descendants(shell.tid)}
    assert descendants == {a.tid, b.tid}


def test_exit_transitions(table):
    task = table.create("t", Component.USER)
    table.exit(task.tid)
    assert task.state is TaskState.EXITED
    with pytest.raises(KernelError):
        table.exit(task.tid)


def test_kernel_cannot_exit(table):
    with pytest.raises(KernelError):
        table.exit(0)


def test_by_name_skips_exited(table):
    t1 = table.create("job", Component.USER)
    table.exit(t1.tid)
    t2 = table.create("job", Component.USER)
    assert table.by_name("job") is t2
    assert table.has_live("job")


def test_missing_task_raises(table):
    with pytest.raises(NoSuchTask):
        table.get(999)
    with pytest.raises(NoSuchTask):
        table.by_name("ghost")


def test_user_task_count_excludes_shell_and_system(table):
    table.create("shell", Component.USER)
    table.create("bsd_server", Component.BSD_SERVER)
    table.create("w1", Component.USER)
    table.create("w2", Component.USER)
    assert table.user_task_count() == 2


def test_live_tasks(table):
    t = table.create("x", Component.USER)
    assert t in table.live_tasks()
    table.exit(t.tid)
    assert t not in table.live_tasks()
    assert t in table.all_tasks()
