"""The VM system: allocation policies, sharing, the Tapeworm protocol."""

import pytest

from repro._types import PAGE_SIZE
from repro.errors import ConfigError
from repro.kernel.vm import AddressSpaceLayout, Region, VMSystem
from repro.machine.machine import Machine, MachineConfig


def _machine():
    return Machine(MachineConfig(memory_bytes=2 * 1024 * 1024, n_vpages=512))


def _vm(policy="sequential", seed=0, reserved=4):
    return VMSystem(
        _machine(), alloc_policy=policy, trial_seed=seed, reserved_frames=reserved
    )


SHARED = AddressSpaceLayout(
    regions=(Region(name="text", start_vpn=0, n_pages=4, share_key="bin"),)
)


class TestRegions:
    def test_overlapping_regions_rejected(self):
        with pytest.raises(ConfigError):
            AddressSpaceLayout(
                regions=(
                    Region(name="a", start_vpn=0, n_pages=4),
                    Region(name="b", start_vpn=3, n_pages=2),
                )
            )

    def test_region_lookup(self):
        layout = AddressSpaceLayout(
            regions=(Region(name="text", start_vpn=2, n_pages=2),)
        )
        assert layout.region_of(2).name == "text"
        assert layout.region_of(4) is None
        assert layout.region_named("text").n_pages == 2
        with pytest.raises(KeyError):
            layout.region_named("data")

    def test_bad_region_rejected(self):
        with pytest.raises(ConfigError):
            Region(name="x", start_vpn=-1, n_pages=1)
        with pytest.raises(ConfigError):
            Region(name="x", start_vpn=0, n_pages=0)


class TestAllocation:
    def test_sequential_policy_orders_frames(self):
        vm = _vm("sequential")
        vm.attach_task(1, AddressSpaceLayout())
        frames = [vm.fault(1, vpn) for vpn in range(5)]
        assert frames == [4, 5, 6, 7, 8]  # after 4 reserved frames

    def test_random_policy_depends_on_trial_seed(self):
        orders = []
        for seed in (1, 2):
            vm = _vm("random", seed=seed)
            vm.attach_task(1, AddressSpaceLayout())
            orders.append([vm.fault(1, vpn) for vpn in range(8)])
        assert orders[0] != orders[1]

    def test_random_policy_reproducible_per_seed(self):
        frames = []
        for _ in range(2):
            vm = _vm("random", seed=42)
            vm.attach_task(1, AddressSpaceLayout())
            frames.append([vm.fault(1, vpn) for vpn in range(8)])
        assert frames[0] == frames[1]

    def test_reserved_frames_withheld(self):
        """Tapeworm's 64-page boot allocation removes frames from the
        pool (a bias source the paper calls out)."""
        vm = _vm("sequential", reserved=10)
        vm.attach_task(1, AddressSpaceLayout())
        assert vm.fault(1, 0) == 10

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            _vm("buddy")

    def test_cannot_reserve_everything(self):
        machine = _machine()
        with pytest.raises(ConfigError):
            VMSystem(machine, reserved_frames=machine.memory.n_frames)


class TestSharing:
    def test_shared_pages_map_to_same_frame(self):
        vm = _vm()
        vm.attach_task(1, SHARED)
        vm.attach_task(2, SHARED)
        f1 = vm.fault(1, 0)
        f2 = vm.fault(2, 0)
        assert f1 == f2
        assert vm.share_refcount("bin", 0) == 2

    def test_frame_freed_only_at_last_unmap(self):
        vm = _vm()
        vm.attach_task(1, SHARED)
        vm.attach_task(2, SHARED)
        frame = vm.fault(1, 0)
        vm.fault(2, 0)
        free_before = vm.free_frames()
        vm.unmap_page(1, 0)
        assert vm.free_frames() == free_before
        vm.unmap_page(2, 0)
        assert vm.free_frames() == free_before + 1
        assert vm.share_refcount("bin", 0) == 0

    def test_mappings_of_frame(self):
        vm = _vm()
        vm.attach_task(1, SHARED)
        vm.attach_task(2, SHARED)
        frame = vm.fault(1, 0)
        vm.fault(2, 0)
        assert set(vm.mappings_of_frame(frame)) == {(1, 0), (2, 0)}


class TestHooks:
    def test_register_and_remove_hooks_fire(self):
        vm = _vm()
        events = []
        vm.on_register_page = lambda tid, pa, va: events.append(("reg", tid, pa, va))
        vm.on_remove_page = lambda tid, pa, va: events.append(("rem", tid, pa, va))
        vm.attach_task(1, AddressSpaceLayout())
        frame = vm.fault(1, 3)
        vm.unmap_page(1, 3)
        assert events == [
            ("reg", 1, frame * PAGE_SIZE, 3 * PAGE_SIZE),
            ("rem", 1, frame * PAGE_SIZE, 3 * PAGE_SIZE),
        ]

    def test_detach_task_removes_every_page(self):
        vm = _vm()
        removed = []
        vm.on_remove_page = lambda tid, pa, va: removed.append(va // PAGE_SIZE)
        vm.attach_task(1, AddressSpaceLayout())
        for vpn in (1, 5, 9):
            vm.fault(1, vpn)
        vm.detach_task(1)
        assert sorted(removed) == [1, 5, 9]
        assert not vm.machine.mmu.has_table(1)


class TestPaging:
    def test_eviction_when_pool_empty(self):
        machine = Machine(
            MachineConfig(memory_bytes=8 * PAGE_SIZE, n_vpages=64)
        )
        vm = VMSystem(machine, alloc_policy="sequential", reserved_frames=2)
        vm.attach_task(1, AddressSpaceLayout())
        for vpn in range(6):  # exactly fills the pool
            vm.fault(1, vpn)
        assert vm.free_frames() == 0
        vm.fault(1, 50)  # forces a page-out
        assert vm.evictions == 1
        table = machine.mmu.table(1)
        assert not table.is_mapped(0)  # FIFO victim
        assert table.is_mapped(50)
