"""The breakpoint register bank."""

import numpy as np
import pytest

from repro.errors import ConfigError, MachineError
from repro.machine.breakpoints import BreakpointUnit


def test_set_and_hit():
    unit = BreakpointUnit(n_registers=2)
    slot = unit.set_breakpoint(0x100, 16)
    assert unit.hits(0x100)
    assert unit.hits(0x10F)
    assert not unit.hits(0x110)
    unit.clear_breakpoint(slot)
    assert not unit.hits(0x100)


def test_bank_exhaustion_is_the_limiting_factor():
    """Table 12 discussion: a handful of registers cannot cover a
    simulated cache's complement."""
    unit = BreakpointUnit(n_registers=4)
    for i in range(4):
        unit.set_breakpoint(i * 64, 16)
    with pytest.raises(MachineError):
        unit.set_breakpoint(0x1000, 16)


def test_clear_covering():
    unit = BreakpointUnit()
    unit.set_breakpoint(0x200, 32)
    unit.set_breakpoint(0x210, 32)
    assert unit.clear_covering(0x210) == 2
    assert unit.n_active() == 0


def test_check_chunk_vectorized():
    unit = BreakpointUnit()
    unit.set_breakpoint(0x40, 16)
    vas = np.array([0x3C, 0x40, 0x44, 0x50, 0x4C], dtype=np.int64)
    assert unit.check_chunk(vas).tolist() == [False, True, True, False, True]


def test_bad_arguments():
    with pytest.raises(ConfigError):
        BreakpointUnit(n_registers=0)
    unit = BreakpointUnit()
    with pytest.raises(MachineError):
        unit.set_breakpoint(0, 0)
    with pytest.raises(MachineError):
        unit.clear_breakpoint(0)
    with pytest.raises(MachineError):
        unit.clear_breakpoint(99)
