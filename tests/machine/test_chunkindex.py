"""PositionIndex: the trap-rescan index must equal the linear scan."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.chunkindex import PositionIndex


def _linear(values: np.ndarray, value: int, position: int) -> list[int]:
    """The replaced O(chunk) rescan, as ground truth."""
    later = np.nonzero(values[position + 1 :] == value)[0]
    return [position + 1 + int(offset) for offset in later]


def test_occurrences_after_matches_linear_scan():
    values = np.array([5, 3, 5, 5, 2, 3, 5, 9], dtype=np.int64)
    index = PositionIndex(values)
    for value in (5, 3, 2, 9, 7):
        for position in range(-1, len(values)):
            assert list(index.occurrences_after(value, position)) == _linear(
                values, value, position
            )


def test_occurrences_are_ascending_and_complete():
    values = np.array([1, 1, 1, 1], dtype=np.int64)
    index = PositionIndex(values)
    assert list(index.occurrences(1)) == [0, 1, 2, 3]
    assert list(index.occurrences_after(1, 1)) == [2, 3]
    assert list(index.occurrences(2)) == []


def test_missing_value_is_empty_not_error():
    index = PositionIndex(np.array([10, 20], dtype=np.int64))
    assert len(index.occurrences_after(15, -1)) == 0


@settings(max_examples=100, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=12), min_size=1, max_size=60
    ),
    value=st.integers(min_value=0, max_value=14),
    position=st.integers(min_value=-1, max_value=60),
)
def test_property_index_equals_linear_rescan(values, value, position):
    array = np.asarray(values, dtype=np.int64)
    index = PositionIndex(array)
    assert list(index.occurrences_after(value, position)) == _linear(
        array, value, position
    )
