"""The chunk execution engine: trap ordering, rescans, accounting."""

import numpy as np
import pytest

from repro._types import Component, TrapMechanism
from repro.machine.cpu import PAGE_FAULT_CYCLES, ExecContext
from repro.machine.machine import Machine, MachineConfig
from repro.machine.traps import TrapKind


@pytest.fixture
def machine():
    m = Machine(MachineConfig(memory_bytes=4 * 1024 * 1024, n_vpages=256))
    # identity-ish fault handler: map vpn -> frame vpn+8
    m.install_page_fault_handler(
        lambda ctx, vpn: m.mmu.table(ctx.tid).map(vpn, vpn + 8)
    )
    return m


@pytest.fixture
def ctx(machine):
    machine.mmu.create_table(1)
    return ExecContext(tid=1, component=Component.USER, cpi=2.0)


def _run(machine, ctx, vas):
    return machine.cpu.run_chunk(ctx, np.asarray(vas, dtype=np.int64))


def test_faults_map_pages_in_first_touch_order(machine, ctx):
    order = []
    machine.page_fault_handler = None
    machine.install_page_fault_handler(
        lambda c, vpn: (
            order.append(vpn),
            machine.mmu.table(c.tid).map(vpn, vpn + 8),
        )[-1]
    )
    result = _run(machine, ctx, [3 * 4096, 4, 3 * 4096 + 8, 2 * 4096])
    assert order == [3, 0, 2]
    assert result.page_faults == 3


def test_base_cycles_include_cpi_and_faults(machine, ctx):
    result = _run(machine, ctx, [0, 4, 8, 12])
    assert result.page_faults == 1
    assert result.base_cycles == PAGE_FAULT_CYCLES + int(round(4 * 2.0))


def test_ecc_trap_delivered_once_per_reference(machine, ctx):
    handled = []

    def handler(frame):
        handled.append(frame.pa)
        machine.ecc.clear_trap(frame.pa & ~15, 16)
        return 100

    machine.dispatcher.install(TrapKind.ECC_ERROR, handler)
    machine.enable_mechanism(TrapMechanism.ECC)
    _run(machine, ctx, [0])  # fault the page in
    pa_base = machine.mmu.table(1).frame_of(0) * 4096
    machine.ecc.set_trap(pa_base, 16)
    result = _run(machine, ctx, [0, 4, 8, 16])
    # the first trapped reference invokes the handler, which clears the
    # trap; the rest of the line's references run free
    assert handled == [pa_base]
    assert result.traps == 1
    assert result.sim_cycles == 100


def test_handler_set_trap_later_in_chunk_is_delivered(machine, ctx):
    """The displaced-line rescan: a trap set by the handler on an address
    appearing later in the same chunk must fire there too."""
    _run(machine, ctx, [0, 64])
    pa = machine.mmu.table(1).frame_of(0) * 4096
    handled = []

    def handler(frame):
        handled.append(frame.pa)
        machine.ecc.clear_trap(frame.pa & ~15, 16)
        if frame.pa == pa:  # displace line at +64: set its trap
            machine.ecc.set_trap(pa + 64, 16)
        return 10

    machine.dispatcher.install(TrapKind.ECC_ERROR, handler)
    machine.enable_mechanism(TrapMechanism.ECC)
    machine.ecc.set_trap(pa, 16)
    result = _run(machine, ctx, [0, 32, 64, 68])
    assert handled == [pa, pa + 64]
    assert result.traps == 2


def test_masked_interrupts_suppress_ecc_traps(machine, ctx):
    machine.dispatcher.install(TrapKind.ECC_ERROR, lambda f: 999)
    machine.enable_mechanism(TrapMechanism.ECC)
    _run(machine, ctx, [0])
    pa = machine.mmu.table(1).frame_of(0) * 4096
    machine.ecc.set_trap(pa, 16)
    machine.mask_interrupts()
    result = _run(machine, ctx, [0, 4])
    assert result.traps == 0
    assert result.masked_traps == 2  # every suppressed access counted
    assert result.sim_cycles == 0
    machine.unmask_interrupts()
    result = _run(machine, ctx, [0])
    assert result.traps == 1


def test_page_valid_trap_delivery(machine, ctx):
    handled = []

    def handler(frame):
        handled.append(frame.va)
        machine.mmu.table(frame.tid).clear_page_trap(frame.va >> 12)
        return 20

    machine.dispatcher.install(TrapKind.PAGE_INVALID, handler)
    machine.enable_mechanism(TrapMechanism.PAGE_VALID)
    _run(machine, ctx, [0, 4096])
    machine.mmu.table(1).set_page_trap(1)
    result = _run(machine, ctx, [0, 4096, 4100])
    assert handled == [4096]
    assert result.traps == 1


def test_page_trap_priority_over_ecc(machine, ctx):
    """Translation happens before the memory access, so an invalid page
    traps first; after its handler validates the page, the ECC trap on
    the same word still fires."""
    sequence = []

    def page_handler(frame):
        sequence.append("page")
        machine.mmu.table(frame.tid).clear_page_trap(frame.va >> 12)
        return 1

    def ecc_handler(frame):
        sequence.append("ecc")
        machine.ecc.clear_trap(frame.pa & ~15, 16)
        return 1

    machine.dispatcher.install(TrapKind.PAGE_INVALID, page_handler)
    machine.dispatcher.install(TrapKind.ECC_ERROR, ecc_handler)
    machine.enable_mechanism(TrapMechanism.PAGE_VALID)
    machine.enable_mechanism(TrapMechanism.ECC)
    _run(machine, ctx, [0])
    pa = machine.mmu.table(1).frame_of(0) * 4096
    machine.mmu.table(1).set_page_trap(0)
    machine.ecc.set_trap(pa, 16)
    result = _run(machine, ctx, [0])
    assert sequence == ["page", "ecc"]
    assert result.traps == 2


def test_clock_tick_handler_invoked(machine, ctx):
    ticks_seen = []
    machine.clock.tick_cycles = 100
    machine.clock._next_tick = 100
    machine.install_tick_handler(lambda n: ticks_seen.append(n))
    result = _run(machine, ctx, [4 * i for i in range(100)])  # 200 cycles
    assert result.ticks >= 1
    assert sum(ticks_seen) == result.ticks


def test_component_counters_accumulate(machine, ctx):
    _run(machine, ctx, [0, 4, 8])
    assert machine.cpu.refs_by_component[Component.USER] == 3
    assert machine.cpu.cycles_by_component[Component.USER] > 0
    machine.cpu.reset_counters()
    assert machine.cpu.refs_by_component[Component.USER] == 0


def test_empty_chunk_is_noop(machine, ctx):
    result = _run(machine, ctx, [])
    assert result.n_refs == 0
    assert result.base_cycles == 0
