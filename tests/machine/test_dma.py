"""The DMA trap-erasure hazard and the shield protocol."""

import numpy as np
import pytest

from repro._types import Component, PAGE_SIZE
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.errors import MachineError
from repro.kernel.kernel import Kernel
from repro.machine.dma import DMAEngine
from repro.machine.machine import Machine, MachineConfig

SEQ = np.arange(0, 2048, 4, dtype=np.int64)


def _setup():
    machine = Machine(MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=512))
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(
        kernel, TapewormConfig(cache=CacheConfig(size_bytes=1024))
    )
    tapeworm.install()
    task = kernel.spawn("job", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    return machine, kernel, tapeworm, task


def test_dma_write_erases_traps_silently():
    """The naive port: after DMA, references that *should* miss do not
    trap — the measurement silently loses misses."""
    machine, kernel, tapeworm, task = _setup()
    kernel.run_chunk(task, SEQ[:16])  # register page, cache 1 line region
    table = machine.mmu.table(task.tid)
    pa_page = table.frame_of(0) * PAGE_SIZE
    assert machine.ecc.is_trapped(pa_page + 0x800)  # untouched area trapped

    dma = DMAEngine(machine)
    dma.write(pa_page, PAGE_SIZE)  # device fills the whole page
    assert not machine.ecc.is_trapped(pa_page + 0x800)

    before = tapeworm.stats.total_misses
    kernel.run_chunk(task, np.array([0x800, 0xC00], dtype=np.int64))
    assert tapeworm.stats.total_misses == before  # misses lost!


def test_shield_hook_restores_traps_and_flushes():
    """The cooperating driver: traps re-armed, buffer flushed from the
    simulated cache, misses counted again."""
    machine, kernel, tapeworm, task = _setup()
    kernel.run_chunk(task, SEQ[:256])  # 1024 bytes cached
    table = machine.mmu.table(task.tid)
    pa_page = table.frame_of(0) * PAGE_SIZE

    dma = DMAEngine(machine)
    dma.install_hook(tapeworm.tw_dma_transfer)
    occupancy_before = tapeworm.structure.occupancy()
    assert occupancy_before > 0
    dma.write(pa_page, PAGE_SIZE)

    # buffer flushed from the simulated cache, traps re-armed everywhere
    assert tapeworm.structure.occupancy() == 0
    assert machine.ecc.is_trapped(pa_page)
    before = tapeworm.stats.total_misses
    kernel.run_chunk(task, SEQ[:4])
    assert tapeworm.stats.total_misses == before + 1  # counted again


def test_dma_alignment_and_counters():
    machine = Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=64))
    dma = DMAEngine(machine)
    machine.ecc.set_trap(0x1000, 32)
    dma.write(0x1008, 8)  # unaligned interior write
    assert not machine.ecc.is_trapped(0x1008)
    assert dma.transfers == 1
    assert dma.bytes_written == 8


def test_double_hook_rejected():
    machine = Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=64))
    dma = DMAEngine(machine)
    dma.install_hook(lambda pa, size: None)
    with pytest.raises(MachineError):
        dma.install_hook(lambda pa, size: None)
