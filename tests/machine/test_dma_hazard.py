"""The §4.3 DMA port hazard, reproduced and caught.

On the DECstation 5000/240 port, Tapeworm's DMA shield was never
written: an I/O transfer into a trapped page regenerates ECC check bits
and silently erases the planted trap, after which the invariant "trap
set exactly when the line is absent from the simulated cache" is broken
and miss counts quietly drift.  This test builds exactly that hazard —
a DMA engine with no post-transfer hook — and proves (a) the trap is
gone while the simulator still believes it planted one, and (b) the
trap-invariant auditor names the damaged granule.
"""

import numpy as np

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.faults.auditor import TrapInvariantAuditor
from repro.kernel.kernel import Kernel
from repro.machine.dma import DMAEngine
from repro.machine.machine import Machine, MachineConfig


def _booted():
    machine = Machine(
        MachineConfig(memory_bytes=8 * 1024 * 1024, n_vpages=512)
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(
        kernel, TapewormConfig(cache=CacheConfig(size_bytes=2048))
    )
    tapeworm.install()
    task = kernel.spawn("victim", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    kernel.run_chunk(task, np.arange(0, 8192, 4, dtype=np.int64))
    return machine, kernel, tapeworm, task


def test_unshielded_dma_write_clears_a_planted_trap():
    machine, _, tapeworm, _ = _booted()
    trapped = sorted(machine.ecc.tapeworm_granules())
    assert trapped, "the warm-up chunk must leave planted traps behind"
    pa = int(trapped[0]) * 16

    # an engine with no post-transfer hook — the un-ported shield
    engine = DMAEngine(machine)
    assert machine.ecc.is_tapeworm_trapped(pa)
    engine.write(pa, 16)
    assert not machine.ecc.is_tapeworm_trapped(pa)


def test_auditor_flags_the_dma_cleared_granule():
    machine, _, tapeworm, _ = _booted()
    trapped = sorted(machine.ecc.tapeworm_granules())
    pa = int(trapped[len(trapped) // 2]) * 16
    DMAEngine(machine).write(pa, 16)

    report = TrapInvariantAuditor(tapeworm).audit(final=True)
    assert not report.clean
    flagged = [d for d in report.divergences if d.kind == "missing_trap"]
    assert len(flagged) == 1
    assert flagged[0].granule == pa // 16


def test_shielded_transfer_leaves_the_invariant_intact():
    """The ported shield (the tw_dma_transfer hook) is the fix: the
    same transfer through the hook keeps the audit clean."""
    machine, _, tapeworm, _ = _booted()
    trapped = sorted(machine.ecc.tapeworm_granules())
    pa = int(trapped[0]) * 16

    engine = DMAEngine(machine)
    engine.install_hook(tapeworm.tw_dma_transfer)
    engine.write(pa, 16)

    report = TrapInvariantAuditor(tapeworm).audit(final=True)
    assert report.clean
