"""SEC-DED codec correctness and the diagnostic controller."""

import numpy as np
import pytest

from repro.errors import MachineError
from repro.machine.ecc import (
    ECCController,
    ECCStatus,
    ECCWord,
    TAPEWORM_CHECK_BIT,
    TrapClass,
)
from repro.machine.memory import GRANULE_BYTES, PhysicalMemory


# ---------------------------------------------------------------------------
# bit-level codec
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("data", [0, 1, 0xFFFFFFFF, 0xDEADBEEF, 0x12345678])
def test_clean_word_decodes_ok(data):
    word = ECCWord(data)
    assert word.status() == (ECCStatus.OK, None)


@pytest.mark.parametrize("bit", range(32))
def test_single_data_bit_error_detected_and_located(bit):
    word = ECCWord(0xCAFEBABE)
    word.flip_data_bit(bit)
    status, position = word.status()
    assert status is ECCStatus.SINGLE_BIT
    assert position is not None and position > 0


@pytest.mark.parametrize("bit", range(7))
def test_single_check_bit_error_detected(bit):
    word = ECCWord(0x0BADF00D)
    word.flip_check_bit(bit)
    status, _ = word.status()
    assert status is ECCStatus.SINGLE_BIT


def test_double_data_bit_error_detected_as_double():
    word = ECCWord(0x12341234)
    word.flip_data_bit(3)
    word.flip_data_bit(17)
    status, _ = word.status()
    assert status is ECCStatus.DOUBLE_BIT


def test_tapeworm_trap_recognized_only_at_designated_bit():
    word = ECCWord(0xABCD0123)
    word.flip_check_bit(TAPEWORM_CHECK_BIT)
    assert word.is_tapeworm_trap()


@pytest.mark.parametrize("bit", range(1, 6))
def test_other_check_bits_are_not_tapeworm_traps(bit):
    word = ECCWord(0xABCD0123)
    word.flip_check_bit(bit)
    assert not word.is_tapeworm_trap()


def test_tapeworm_bit_plus_data_error_is_not_a_tapeworm_trap():
    """Footnote 1: a double-bit pattern means a true error occurred."""
    word = ECCWord(0x55AA55AA)
    word.flip_check_bit(TAPEWORM_CHECK_BIT)
    word.flip_data_bit(9)
    assert not word.is_tapeworm_trap()


def test_word_rejects_out_of_range_data():
    with pytest.raises(MachineError):
        ECCWord(2**32)


def test_flip_rejects_bad_bit_indices():
    word = ECCWord(0)
    with pytest.raises(MachineError):
        word.flip_check_bit(7)
    with pytest.raises(MachineError):
        word.flip_data_bit(32)


# ---------------------------------------------------------------------------
# controller
# ---------------------------------------------------------------------------


@pytest.fixture
def controller():
    return ECCController(PhysicalMemory(size_bytes=64 * 4096))


def test_set_and_clear_trap_roundtrip(controller):
    controller.set_trap(0x1000, 64)
    assert controller.is_trapped(0x1000)
    assert controller.is_trapped(0x103F)
    assert not controller.is_trapped(0x1040)
    controller.clear_trap(0x1000, 64)
    assert not controller.is_trapped(0x1000)


def test_trap_requires_granule_alignment(controller):
    with pytest.raises(MachineError):
        controller.set_trap(0x1008, 16)
    with pytest.raises(MachineError):
        controller.set_trap(0x1000, 8)


def test_recent_sets_log_drains(controller):
    controller.set_trap(0x2000, 32)
    recent = controller.drain_recent_sets()
    assert recent == [0x2000 // GRANULE_BYTES, 0x2000 // GRANULE_BYTES + 1]
    assert controller.drain_recent_sets() == []


def test_classify_pure_tapeworm_trap(controller):
    controller.set_trap(0x3000, 16)
    assert controller.classify(0x3000) is TrapClass.TAPEWORM


def test_true_single_bit_error_detected_while_tapeworm_inactive(controller):
    controller.inject_true_error(0x4000, bit=5)
    assert controller.is_trapped(0x4000)
    assert controller.classify(0x4000) is TrapClass.TRUE_SINGLE


def test_true_error_detected_even_with_tapeworm_trap_set(controller):
    """The paper: 'Even when Tapeworm is active, it correctly detects
    true memory errors with high probability.'"""
    controller.set_trap(0x5000, 16)
    controller.inject_true_error(0x5004, bit=11)
    assert controller.classify(0x5000) is TrapClass.TRUE_DOUBLE


def test_double_bit_error_classified(controller):
    controller.inject_true_error(0x6000, bit=2, double=True)
    assert controller.classify(0x6000) is TrapClass.TRUE_DOUBLE


def test_scrub_preserves_tapeworm_trap(controller):
    controller.set_trap(0x7000, 16)
    controller.inject_true_error(0x7000, bit=1)
    controller.scrub(0x7000)
    assert controller.is_trapped(0x7000)  # our own trap survives
    assert controller.classify(0x7000) is TrapClass.TAPEWORM


def test_clear_trap_keeps_true_error_trapping(controller):
    controller.set_trap(0x8000, 16)
    controller.inject_true_error(0x8000, bit=3)
    controller.clear_trap(0x8000, 16)
    assert controller.is_trapped(0x8000)  # the fault is still there
    assert controller.classify(0x8000) is TrapClass.TRUE_SINGLE


def test_bitmap_matches_is_trapped(controller):
    controller.set_trap(0x9000, 4096)
    granules = np.arange(0x9000 // 16, (0x9000 + 4096) // 16)
    assert controller.granule_trapped[granules].all()
