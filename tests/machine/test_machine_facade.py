"""The Machine facade: wiring, mechanisms, handler slots."""

import pytest

from repro._types import Component, TrapMechanism
from repro.errors import ConfigError, MachineError
from repro.machine.cpu import ExecContext
from repro.machine.machine import Machine, MachineConfig


def test_default_geometry():
    machine = Machine()
    assert machine.memory.n_frames == 64 * 1024 * 1024 // 4096
    assert machine.hw_tlb.n_entries == 64


def test_config_validation():
    with pytest.raises(ConfigError):
        MachineConfig(n_vpages=0)


def test_handler_slots_single_occupancy():
    machine = Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=64))
    machine.install_page_fault_handler(lambda ctx, vpn: None)
    with pytest.raises(MachineError):
        machine.install_page_fault_handler(lambda ctx, vpn: None)
    machine.install_tick_handler(lambda n: None)
    with pytest.raises(MachineError):
        machine.install_tick_handler(lambda n: None)


def test_fault_without_handler_is_an_error():
    machine = Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=64))
    ctx = ExecContext(tid=1, component=Component.USER)
    with pytest.raises(MachineError):
        machine.deliver_page_fault(ctx, 0)


def test_mechanism_toggling():
    machine = Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=64))
    machine.enable_mechanism(TrapMechanism.ECC)
    machine.enable_mechanism(TrapMechanism.PAGE_VALID)
    assert machine.active_mechanisms == {
        TrapMechanism.ECC,
        TrapMechanism.PAGE_VALID,
    }
    machine.disable_mechanism(TrapMechanism.ECC)
    machine.disable_mechanism(TrapMechanism.ECC)  # idempotent
    assert machine.active_mechanisms == {TrapMechanism.PAGE_VALID}


def test_interrupt_mask_toggling():
    machine = Machine(MachineConfig(memory_bytes=1024 * 1024, n_vpages=64))
    assert not machine.interrupts_masked
    machine.mask_interrupts()
    assert machine.interrupts_masked
    machine.unmask_interrupts()
    assert not machine.interrupts_masked
