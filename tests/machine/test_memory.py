"""Physical memory geometry."""

import pytest

from repro._types import PAGE_SIZE
from repro.errors import ConfigError, MemoryFault
from repro.machine.memory import GRANULE_BYTES, PhysicalMemory


def test_geometry_counts():
    mem = PhysicalMemory(size_bytes=1024 * 1024)
    assert mem.n_frames == 256
    assert mem.n_granules == 1024 * 1024 // GRANULE_BYTES
    assert mem.n_words == 256 * 1024


def test_granule_is_four_words():
    assert GRANULE_BYTES == 16


@pytest.mark.parametrize("bad", [0, -4096, 100, PAGE_SIZE + 1])
def test_rejects_non_page_multiple_sizes(bad):
    with pytest.raises(ConfigError):
        PhysicalMemory(size_bytes=bad)


def test_check_pa_accepts_full_range():
    mem = PhysicalMemory(size_bytes=8192)
    mem.check_pa(0)
    mem.check_pa(8191)
    mem.check_pa(0, 8192)


@pytest.mark.parametrize(
    "pa,size", [(-1, 1), (8192, 1), (8191, 2), (0, 8193), (0, 0)]
)
def test_check_pa_rejects_out_of_range(pa, size):
    mem = PhysicalMemory(size_bytes=8192)
    with pytest.raises(MemoryFault):
        mem.check_pa(pa, size)


def test_frame_and_granule_of():
    mem = PhysicalMemory(size_bytes=16 * PAGE_SIZE)
    assert mem.frame_of(0) == 0
    assert mem.frame_of(PAGE_SIZE) == 1
    assert mem.frame_of(PAGE_SIZE - 1) == 0
    assert mem.granule_of(15) == 0
    assert mem.granule_of(16) == 1
    assert mem.granule_of(PAGE_SIZE) == PAGE_SIZE // GRANULE_BYTES
