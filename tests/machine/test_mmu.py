"""Page tables, valid-bit traps, vectorized translation."""

import numpy as np
import pytest

from repro._types import PAGE_SIZE
from repro.errors import MachineError, MemoryFault
from repro.machine.mmu import MMU, PageTable


@pytest.fixture
def table():
    return PageTable(tid=3, n_vpages=64)


def test_map_unmap_roundtrip(table):
    table.map(5, 17)
    assert table.is_mapped(5)
    assert table.frame_of(5) == 17
    assert table.valid[5] and table.resident[5]
    assert table.unmap(5) == 17
    assert not table.is_mapped(5)


def test_double_map_rejected(table):
    table.map(1, 2)
    with pytest.raises(MachineError):
        table.map(1, 3)


def test_unmap_of_unmapped_rejected(table):
    with pytest.raises(MachineError):
        table.unmap(0)


def test_vpn_bounds_checked(table):
    with pytest.raises(MemoryFault):
        table.map(64, 0)
    with pytest.raises(MemoryFault):
        table.is_mapped(-1)


def test_page_trap_set_and_clear(table):
    table.map(7, 9)
    table.set_page_trap(7)
    assert table.is_page_trapped(7)
    assert not table.valid[7]
    assert table.resident[7]  # the software truth bit (footnote 2)
    table.clear_page_trap(7)
    assert not table.is_page_trapped(7)
    assert table.valid[7]


def test_page_trap_requires_residency(table):
    with pytest.raises(MachineError):
        table.set_page_trap(0)


def test_recent_invalidation_log(table):
    table.map(2, 4)
    table.set_page_trap(2)
    assert table.drain_recent_invalidations() == [2]
    assert table.drain_recent_invalidations() == []


def test_translate_chunk(table):
    table.map(0, 10)
    table.map(1, 20)
    vas = np.array([0, 4, PAGE_SIZE + 8], dtype=np.int64)
    pas = table.translate(vas)
    assert pas.tolist() == [
        10 * PAGE_SIZE,
        10 * PAGE_SIZE + 4,
        20 * PAGE_SIZE + 8,
    ]


def test_translate_rejects_unmapped(table):
    with pytest.raises(MemoryFault):
        table.translate(np.array([0], dtype=np.int64))


def test_mapped_vpns(table):
    table.map(3, 1)
    table.map(9, 2)
    assert table.mapped_vpns().tolist() == [3, 9]


def test_mmu_table_lifecycle():
    mmu = MMU(n_vpages=32)
    table = mmu.create_table(1)
    assert mmu.table(1) is table
    assert mmu.has_table(1)
    with pytest.raises(MachineError):
        mmu.create_table(1)
    mmu.destroy_table(1)
    assert not mmu.has_table(1)
    with pytest.raises(MachineError):
        mmu.table(1)
    with pytest.raises(MachineError):
        mmu.destroy_table(1)
