"""The R3000-style software-managed hardware TLB."""

import pytest

from repro.errors import ConfigError, MachineError
from repro.machine.tlb import HardwareTLB


def test_probe_miss_then_refill_then_hit():
    tlb = HardwareTLB()
    assert tlb.probe(1, 100) is None
    tlb.insert(1, 100, 55)
    assert tlb.probe(1, 100) == 55
    assert tlb.misses == 1 and tlb.hits == 1


def test_asid_disambiguates_tasks():
    tlb = HardwareTLB()
    tlb.insert(1, 100, 55)
    tlb.insert(2, 100, 77)
    assert tlb.probe(1, 100) == 55
    assert tlb.probe(2, 100) == 77


def test_random_replacement_cycles_unwired_slots():
    tlb = HardwareTLB(n_entries=10, n_wired=2)
    for vpn in range(8):
        tlb.insert(0, vpn, vpn)
    assert len(tlb) == 8
    tlb.insert(0, 100, 100)  # evicts whatever the random slot held
    assert len(tlb) == 8


def test_wired_entries_survive_unwired_pressure():
    tlb = HardwareTLB(n_entries=8, n_wired=2)
    tlb.insert(0, 1000, 1, wired=True)
    tlb.insert(0, 1001, 2, wired=True)
    for vpn in range(100):
        tlb.insert(0, vpn, vpn)
    assert tlb.probe(0, 1000) == 1
    assert tlb.probe(0, 1001) == 2


def test_wired_slots_exhaust():
    tlb = HardwareTLB(n_entries=4, n_wired=1)
    tlb.insert(0, 1, 1, wired=True)
    with pytest.raises(MachineError):
        tlb.insert(0, 2, 2, wired=True)


def test_reinsert_same_key_updates_in_place():
    tlb = HardwareTLB(n_entries=4, n_wired=0)
    tlb.insert(0, 5, 50)
    tlb.insert(0, 5, 51)
    assert tlb.probe(0, 5) == 51
    assert len(tlb) == 1


def test_probe_out():
    tlb = HardwareTLB()
    tlb.insert(3, 8, 80)
    assert tlb.probe_out(3, 8)
    assert not tlb.probe_out(3, 8)
    assert tlb.probe(3, 8) is None


def test_flush_asid():
    tlb = HardwareTLB()
    for vpn in range(5):
        tlb.insert(1, vpn, vpn)
        tlb.insert(2, vpn, vpn)
    assert tlb.flush_asid(1) == 5
    assert len(tlb) == 5
    assert {key[0] for key in tlb.resident_keys()} == {2}


def test_flush_all():
    tlb = HardwareTLB()
    tlb.insert(0, 1, 1)
    tlb.flush_all()
    assert len(tlb) == 0


@pytest.mark.parametrize("entries,wired", [(0, 0), (4, 4), (4, 5), (-1, 0)])
def test_bad_geometry_rejected(entries, wired):
    with pytest.raises(ConfigError):
        HardwareTLB(n_entries=entries, n_wired=wired)
