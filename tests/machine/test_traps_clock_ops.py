"""Trap dispatch, the clock timer, and the Table 12 survey."""

import pytest

from repro._types import Component, TrapMechanism
from repro.errors import ConfigError, MachineError
from repro.machine.clock import ClockTimer
from repro.machine.ops import (
    PROCESSORS,
    PRIVILEGED_OPS,
    assess_port,
    supports,
)
from repro.machine.traps import TrapDispatcher, TrapFrame, TrapKind


def _frame(kind=TrapKind.ECC_ERROR):
    return TrapFrame(
        kind=kind, tid=1, component=Component.USER, va=0x100, pa=0x200, cycle=0
    )


class TestDispatcher:
    def test_dispatch_returns_handler_cycles(self):
        dispatcher = TrapDispatcher()
        dispatcher.install(TrapKind.ECC_ERROR, lambda frame: 246)
        assert dispatcher.dispatch(_frame()) == 246
        assert dispatcher.counts[TrapKind.ECC_ERROR] == 1

    def test_unhandled_trap_counts_but_costs_nothing(self):
        dispatcher = TrapDispatcher()
        assert dispatcher.dispatch(_frame()) == 0
        assert dispatcher.counts[TrapKind.ECC_ERROR] == 1

    def test_double_install_rejected(self):
        dispatcher = TrapDispatcher()
        dispatcher.install(TrapKind.ECC_ERROR, lambda frame: 0)
        with pytest.raises(MachineError):
            dispatcher.install(TrapKind.ECC_ERROR, lambda frame: 0)

    def test_replace_returns_old(self):
        dispatcher = TrapDispatcher()
        first = lambda frame: 1
        dispatcher.install(TrapKind.TLB_MISS, first)
        old = dispatcher.replace(TrapKind.TLB_MISS, lambda frame: 2)
        assert old is first
        assert dispatcher.dispatch(_frame(TrapKind.TLB_MISS)) == 2

    def test_uninstall(self):
        dispatcher = TrapDispatcher()
        dispatcher.install(TrapKind.BREAKPOINT, lambda frame: 5)
        dispatcher.uninstall(TrapKind.BREAKPOINT)
        assert not dispatcher.installed(TrapKind.BREAKPOINT)
        with pytest.raises(MachineError):
            dispatcher.uninstall(TrapKind.BREAKPOINT)


class TestClock:
    def test_ticks_cross_boundaries(self):
        clock = ClockTimer(tick_cycles=100)
        assert clock.advance(99) == 0
        assert clock.advance(1) == 1
        assert clock.advance(250) == 2
        assert clock.now == 350
        assert clock.ticks_delivered == 3

    def test_reset(self):
        clock = ClockTimer(tick_cycles=10)
        clock.advance(25)
        clock.reset()
        assert clock.now == 0
        assert clock.advance(9) == 0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ConfigError):
            ClockTimer(tick_cycles=0)
        clock = ClockTimer()
        with pytest.raises(ConfigError):
            clock.advance(-1)

    @pytest.mark.parametrize("bad", [2.5, 1.0, "10", None, float("nan")])
    def test_rejects_non_integer_cycles(self, bad):
        """Floats would silently corrupt ``now``; only true integers
        (including numpy's) may advance the clock."""
        clock = ClockTimer(tick_cycles=100)
        with pytest.raises(ConfigError):
            clock.advance(bad)

    def test_accepts_numpy_integers(self):
        np = pytest.importorskip("numpy")
        clock = ClockTimer(tick_cycles=100)
        assert clock.advance(np.int64(150)) == 1
        assert clock.now == 150

    def test_state_unchanged_after_rejected_advance(self):
        clock = ClockTimer(tick_cycles=100)
        clock.advance(42)
        for bad in (-5, 2.5):
            with pytest.raises(ConfigError):
                clock.advance(bad)
        assert clock.now == 42
        assert clock.ticks_delivered == 0


class TestOpsSurvey:
    def test_matrix_is_complete(self):
        for op in PRIVILEGED_OPS:
            for cpu in PROCESSORS:
                supports(cpu, op)  # no KeyError

    def test_known_cells_match_paper(self):
        assert supports("MIPS R3000", "Memory Parity or ECC Traps") is True
        assert supports("MIPS R3000", "Variable Page Size") is False
        assert supports("Intel i486", "Memory Parity or ECC Traps") is None
        assert supports("Tera", "Data Breakpoint") is True
        assert supports("DEC Alpha", "Instruction Counters") is True

    def test_unknown_keys_rejected(self):
        with pytest.raises(KeyError):
            supports("Z80", "Data Breakpoint")
        with pytest.raises(KeyError):
            supports("MIPS R3000", "Time Travel")

    def test_r3000_port_assessment(self):
        assessment = assess_port("MIPS R3000")
        assert TrapMechanism.ECC in assessment.mechanisms
        assert TrapMechanism.PAGE_VALID in assessment.mechanisms
        assert assessment.can_simulate_caches
        assert assessment.can_simulate_tlbs
        assert assessment.finest_granularity_bytes == 16

    def test_i486_port_is_tlb_only(self):
        """The paper's 486 Gateway port does TLB simulation only."""
        assessment = assess_port("Intel i486")
        assert not assessment.can_simulate_caches
        assert assessment.can_simulate_tlbs
