"""Bit-equality of the one-pass grid engine against per-config paths.

The grid sweep's correctness contract: for every ``(set-count × ways)``
cell, over physical and virtual indexing and multi-tid chunk sequences,
the single-pass engine's miss count equals (1) the per-config
``Cache2000`` fast path (PR 8 compiled pipeline kernels) and (2) the
exact per-reference path (``force_general_path=True``) — and each
set-count's capped distance histogram partitions the whole reference
stream (``counts + overflow + cold == refs``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import Indexing
from repro.caches.config import GridConfig
from repro.caches.gridsweep import GridSweepSimulator
from repro.tracing.cache2000 import Cache2000

INDEXINGS = (Indexing.PHYSICAL, Indexing.VIRTUAL)


def _chunks(seed: int, n_chunks: int = 6) -> list[tuple[np.ndarray, int]]:
    """Multi-tid chunk sequence with reuse (tight spans force evictions)."""
    rng = np.random.default_rng(seed)
    chunks = []
    for _ in range(n_chunks):
        n = int(rng.integers(200, 3000))
        span = 1 << int(rng.integers(10, 15))
        base = int(rng.integers(0, 4)) * 4096
        addresses = (
            base + (rng.integers(0, span, n) & ~3)
        ).astype(np.int64)
        chunks.append((addresses, int(rng.integers(0, 3))))
    return chunks


def _grid_counts(grid, chunks):
    sweep = GridSweepSimulator(grid)
    for addresses, tid in chunks:
        sweep.simulate_chunk(addresses, tid=tid)
    return sweep, sweep.miss_counts()


@pytest.mark.parametrize("indexing", INDEXINGS)
@pytest.mark.parametrize("seed", (11, 23))
def test_grid_matches_per_config_fast_path(indexing, seed):
    grid = GridConfig((16, 32, 64, 128), (1, 2, 4, 8), indexing=indexing)
    chunks = _chunks(seed)
    sweep, counts = _grid_counts(grid, chunks)
    for n_sets, ways in grid.cells():
        reference = Cache2000(grid.config_for(n_sets, ways))
        for addresses, tid in chunks:
            reference.simulate_chunk(addresses, tid=tid)
        assert counts[(n_sets, ways)] == reference.stats.total_misses, (
            n_sets,
            ways,
        )
    for n_sets, hist in sweep.distance_histograms().items():
        assert hist.total == sweep.refs


@pytest.mark.parametrize("indexing", INDEXINGS)
def test_grid_matches_exact_per_reference_path(indexing):
    # smaller grid: the per-reference path is interpreter-bound
    grid = GridConfig((8, 16), (1, 2, 4), indexing=indexing)
    chunks = _chunks(37, n_chunks=4)
    _, counts = _grid_counts(grid, chunks)
    for n_sets, ways in grid.cells():
        reference = Cache2000(
            grid.config_for(n_sets, ways), force_general_path=True
        )
        for addresses, tid in chunks:
            reference.simulate_chunk(addresses, tid=tid)
        assert counts[(n_sets, ways)] == reference.stats.total_misses


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 2**31 - 1),
    set_bits=st.lists(
        st.integers(2, 6), min_size=1, max_size=3, unique=True
    ),
    way_bits=st.lists(
        st.integers(0, 3), min_size=1, max_size=3, unique=True
    ),
    indexing=st.sampled_from(INDEXINGS),
)
def test_grid_equivalence_fuzzed(seed, set_bits, way_bits, indexing):
    grid = GridConfig(
        set_counts=tuple(1 << b for b in set_bits),
        ways=tuple(1 << b for b in way_bits),
        indexing=indexing,
    )
    chunks = _chunks(seed, n_chunks=3)
    sweep, counts = _grid_counts(grid, chunks)
    hists = sweep.distance_histograms()
    for n_sets, ways in grid.cells():
        reference = Cache2000(grid.config_for(n_sets, ways))
        for addresses, tid in chunks:
            reference.simulate_chunk(addresses, tid=tid)
        assert counts[(n_sets, ways)] == reference.stats.total_misses
        assert hists[n_sets].misses_at(ways) == counts[(n_sets, ways)]
        assert hists[n_sets].total == sweep.refs


def test_dm_column_matches_multisize_sweep():
    """The ways=1 column is exactly the refactored MultiSizeDMSweep."""
    from repro.tracing.multisize import MultiSizeDMSweep

    grid = GridConfig((64, 128, 256), (1,))
    chunks = _chunks(5)
    _, counts = _grid_counts(grid, chunks)
    sweep = MultiSizeDMSweep(
        tuple(16 * n_sets for n_sets in grid.set_counts)
    )
    for addresses, _ in chunks:
        sweep.simulate_chunk(addresses)
    assert sweep.miss_counts() == {
        16 * n_sets: counts[(n_sets, 1)] for n_sets in grid.set_counts
    }
    assert sweep.check_monotonicity()
