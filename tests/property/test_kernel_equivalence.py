"""Bit-equality of the grouped-set kernel against the per-reference path.

The contract the trace-driven fast path rests on: for every covered
configuration — associativities {1,2,4,8}, policies {lru, fifo,
seeded random}, virtual/physical indexing, multi-tid streams — the
:class:`Cache2000` fast path produces *identical* per-chunk miss
counts, final occupancy and resident keys to the per-reference
:class:`SetAssociativeCache` loop.  Seeded-random configs are covered
too: the dispatcher must route them to the general path (grouping would
permute their RNG stream), so equality is by construction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import Indexing
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig, TLBConfig
from repro.caches.kernels import GroupedSetKernel, supports_policy
from repro.caches.replacement import make_policy
from repro.caches.tlb import SimulatedTLB
from repro.tracing.cache2000 import Cache2000

ASSOCIATIVITIES = (1, 2, 4, 8)
POLICIES = ("lru", "fifo", "random")
INDEXINGS = (Indexing.PHYSICAL, Indexing.VIRTUAL)


def _config(associativity: int, indexing: Indexing) -> CacheConfig:
    return CacheConfig(
        size_bytes=512,  # small: constant pressure, frequent evictions
        line_bytes=16,
        associativity=associativity,
        indexing=indexing,
    )


# ---------------------------------------------------------------------------
# exhaustive grid on a fixed pseudo-random multi-tid stream
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("associativity", ASSOCIATIVITIES)
@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("indexing", INDEXINGS)
def test_cache2000_paths_bit_identical(associativity, policy_name, indexing):
    rng = np.random.default_rng(
        hash((associativity, policy_name, indexing.value)) & 0xFFFF
    )
    config = _config(associativity, indexing)
    fast = Cache2000(config, policy=make_policy(policy_name, seed=3))
    slow = Cache2000(
        config, policy=make_policy(policy_name, seed=3),
        force_general_path=True,
    )
    for _ in range(12):
        tid = int(rng.integers(0, 3))
        n = int(rng.integers(1, 600))
        base = int(rng.integers(0, 40)) * 64
        addrs = (base + rng.integers(0, 256, size=n) * 4).astype(np.int64)
        assert fast.simulate_chunk(addrs, tid=tid) == slow.simulate_chunk(
            addrs, tid=tid
        )
    assert fast.stats.total_misses == slow.stats.total_misses
    assert fast.resident_lines() == slow.resident_lines()
    assert fast.resident_keys() == slow.resident_keys()


@pytest.mark.parametrize("associativity", ASSOCIATIVITIES)
@pytest.mark.parametrize("policy_name", ("lru", "fifo"))
def test_kernel_matches_reference_cache_directly(associativity, policy_name):
    """The kernel itself (not just Cache2000 dispatch) vs the reference."""
    rng = np.random.default_rng(99 + associativity)
    config = _config(associativity, Indexing.VIRTUAL)
    kernel = GroupedSetKernel(config, policy_name)
    reference = SetAssociativeCache(config, make_policy(policy_name))
    for _ in range(10):
        tid = int(rng.integers(0, 4))
        addrs = (rng.integers(0, 512, size=400) * 4).astype(np.int64)
        ref_misses = 0
        for addr in addrs.tolist():
            hit, _ = reference.access(tid, addr)
            ref_misses += not hit
        assert kernel.simulate_chunk(addrs, space=tid) == ref_misses
    assert kernel.occupancy() == reference.occupancy()
    assert kernel.resident_keys() == reference.resident_keys()


def test_random_policy_routes_to_general_path():
    config = _config(2, Indexing.PHYSICAL)
    policy = make_policy("random", seed=11)
    assert not supports_policy(policy)
    sim = Cache2000(config, policy=policy)
    assert sim.capabilities.general
    assert sim.capabilities.selected == "general"
    assert "policy:random" in sim.capabilities.reasons


def test_forced_general_is_reported_with_its_reason():
    sim = Cache2000(_config(2, Indexing.VIRTUAL), force_general_path=True)
    assert sim.capabilities.general
    assert "forced:request" in sim.capabilities.reasons


# ---------------------------------------------------------------------------
# hypothesis: adversarial streams, chunked arbitrarily
# ---------------------------------------------------------------------------

_streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),       # tid
        st.lists(
            st.integers(min_value=0, max_value=255),  # word index
            min_size=1,
            max_size=80,
        ),
    ),
    min_size=1,
    max_size=6,
)


@settings(max_examples=40, deadline=None)
@given(
    chunks=_streams,
    associativity=st.sampled_from(ASSOCIATIVITIES),
    policy_name=st.sampled_from(("lru", "fifo")),
    indexing=st.sampled_from(INDEXINGS),
)
def test_property_paths_agree_on_any_stream(
    chunks, associativity, policy_name, indexing
):
    config = _config(associativity, indexing)
    fast = Cache2000(config, policy=make_policy(policy_name))
    slow = Cache2000(
        config, policy=make_policy(policy_name), force_general_path=True
    )
    assert not fast.capabilities.general  # the point of the test
    for tid, words in chunks:
        addrs = np.asarray(words, dtype=np.int64) * 4
        assert fast.simulate_chunk(addrs, tid=tid) == slow.simulate_chunk(
            addrs, tid=tid
        )
    assert fast.resident_keys() == slow.resident_keys()


# ---------------------------------------------------------------------------
# the full pipeline sweep: every compiled kernel vs the reference path,
# with tracing (telemetry profiling) and fault sessions toggled — the
# pipeline's shims and environment probes must never change results
# ---------------------------------------------------------------------------

import contextlib

from repro.caches.pipeline import reset_default_registry
from repro.faults.plan import FaultPlan
from repro.faults.session import enabled as faults_enabled
from repro.telemetry.session import enabled as telemetry_enabled


def _environment(profiling: bool, faulting: bool):
    stack = contextlib.ExitStack()
    if profiling:
        stack.enter_context(telemetry_enabled(profile=True))
    if faulting:
        stack.enter_context(faults_enabled(FaultPlan(seed=7)))
    return stack


@pytest.mark.parametrize("associativity", ASSOCIATIVITIES)
@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("indexing", INDEXINGS)
@pytest.mark.parametrize("profiling", (False, True))
@pytest.mark.parametrize("faulting", (False, True))
def test_pipeline_sweep_bit_identical(
    associativity, policy_name, indexing, profiling, faulting
):
    """Compiled kernel vs forced-general reference across the full grid.

    Tracing on/off (profiling shims composed into the kernel) and
    fault-plan on/off (an active fault session) are swept too: neither
    may perturb miss counts, occupancy, or resident keys.
    """
    rng = np.random.default_rng(
        hash((associativity, policy_name, indexing.value)) & 0xFFFF
    )
    config = _config(associativity, indexing)
    with _environment(profiling, faulting):
        fast = Cache2000(config, policy=make_policy(policy_name, seed=3))
        reference = Cache2000(
            config,
            policy=make_policy(policy_name, seed=3),
            force_general_path=True,
        )
        assert reference.capabilities.general
        for _ in range(8):
            tid = int(rng.integers(0, 3))
            n = int(rng.integers(1, 500))
            addrs = (rng.integers(0, 256, size=n) * 4).astype(np.int64)
            assert fast.simulate_chunk(addrs, tid=tid) == (
                reference.simulate_chunk(addrs, tid=tid)
            )
        assert fast.resident_lines() == reference.resident_lines()
        assert fast.resident_keys() == reference.resident_keys()


def test_sweep_results_survive_registry_reset():
    """Cold vs warm registry: compiling fresh programs mid-stream (as a
    forked worker would) yields the same counts as reusing cached ones."""
    config = _config(4, Indexing.VIRTUAL)
    rng = np.random.default_rng(23)
    chunks = [
        (rng.integers(0, 256, size=300) * 4).astype(np.int64)
        for _ in range(6)
    ]
    warm = Cache2000(config)
    warm_misses = [int(warm.simulate_chunk(c, tid=1)) for c in chunks]
    reset_default_registry()
    try:
        cold = Cache2000(config)
        cold_misses = [int(cold.simulate_chunk(c, tid=1)) for c in chunks]
    finally:
        reset_default_registry()
    assert cold_misses == warm_misses
    assert cold.resident_keys() == warm.resident_keys()


# ---------------------------------------------------------------------------
# the TLB chunk path
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("associativity", (0, 2, 4))  # 0 = fully associative
@pytest.mark.parametrize("policy_name", POLICIES)
@pytest.mark.parametrize("page_kb", (4, 16))
def test_tlb_chunk_path_bit_identical(associativity, policy_name, page_kb):
    config = TLBConfig(
        n_entries=16, associativity=associativity, page_bytes=page_kb * 1024
    )
    rng = np.random.default_rng(17 + associativity + page_kb)
    chunked = SimulatedTLB(config, make_policy(policy_name, seed=5))
    per_ref = SimulatedTLB(config, make_policy(policy_name, seed=5))
    for _ in range(8):
        tid = int(rng.integers(0, 3))
        vpns = rng.integers(0, 200, size=300).astype(np.int64)
        ref_misses = 0
        for vpn in vpns.tolist():
            hit, _ = per_ref.access(tid, vpn)
            ref_misses += not hit
        assert chunked.access_chunk(tid, vpns) == ref_misses
    assert chunked.resident_keys() == per_ref.resident_keys()
    assert chunked.searches == per_ref.searches
    assert chunked.insertions == per_ref.insertions
    # trap-driven inserts keep working against the same state afterwards
    assert chunked.miss_insert(9, 0) == per_ref.miss_insert(9, 0)
