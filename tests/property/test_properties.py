"""Property-based tests on the core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import Component
from repro.caches.cache import SetAssociativeCache
from repro.caches.config import CacheConfig
from repro.caches.stack import StackSimulator
from repro.core.registration import PageRegistry
from repro.core.sampling import SetSampler
from repro.harness.experiment import TrialStats
from repro.kernel.scheduler import Demand, Scheduler
from repro.machine.ecc import ECCStatus, ECCWord
from repro.tracing.cache2000 import Cache2000

# ---------------------------------------------------------------------------
# ECC codec
# ---------------------------------------------------------------------------

_words = st.integers(min_value=0, max_value=2**32 - 1)
_flips = st.integers(min_value=0, max_value=38)  # 32 data + 7 check bits


def _flip(word: ECCWord, position: int) -> None:
    if position < 32:
        word.flip_data_bit(position)
    else:
        word.flip_check_bit(position - 32)


@given(data=_words)
def test_ecc_clean_words_decode_ok(data):
    assert ECCWord(data).status() == (ECCStatus.OK, None)


@given(data=_words, flip=_flips)
def test_ecc_any_single_flip_is_correctable(data, flip):
    word = ECCWord(data)
    _flip(word, flip)
    status, _ = word.status()
    assert status is ECCStatus.SINGLE_BIT


@given(
    data=_words,
    flips=st.lists(_flips, min_size=2, max_size=2, unique=True),
)
def test_ecc_any_double_flip_is_detected_uncorrectable(data, flips):
    word = ECCWord(data)
    for flip in flips:
        _flip(word, flip)
    status, _ = word.status()
    assert status is ECCStatus.DOUBLE_BIT


# ---------------------------------------------------------------------------
# cache structures
# ---------------------------------------------------------------------------

_addr_streams = st.lists(
    st.integers(min_value=0, max_value=4095), min_size=1, max_size=300
)


@given(addrs=_addr_streams)
def test_cache_occupancy_bounded_and_keys_unique(addrs):
    config = CacheConfig(size_bytes=256, line_bytes=16, associativity=2)
    cache = SetAssociativeCache(config)
    for addr in addrs:
        cache.access(1, addr * 4)
    assert cache.occupancy() <= config.n_lines
    keys = cache.resident_keys()
    assert len(keys) == cache.occupancy()
    # every resident line reports a hit
    for _, line in keys:
        assert cache.contains(1, line)


@given(addrs=_addr_streams)
def test_fully_associative_lru_matches_stack_distance(addrs):
    """The Mattson inclusion property ties the stack profile to direct
    simulation at every capacity."""
    byte_addrs = np.array(addrs, dtype=np.int64) * 16
    stack = StackSimulator(line_bytes=16)
    stack.process(byte_addrs)
    for lines in (2, 8, 32):
        cache = SetAssociativeCache(
            CacheConfig(size_bytes=lines * 16, line_bytes=16, associativity=lines)
        )
        misses = sum(
            0 if cache.access(0, int(a))[0] else 1 for a in byte_addrs
        )
        assert misses / len(byte_addrs) == pytest.approx(
            stack.miss_ratio(lines)
        )


@given(addrs=_addr_streams, tid=st.integers(min_value=0, max_value=5))
def test_cache2000_paths_agree(addrs, tid):
    config = CacheConfig(size_bytes=512, line_bytes=16)
    chunk = np.array(addrs, dtype=np.int64) * 4
    fast = Cache2000(config)
    slow = Cache2000(config, force_general_path=True)
    assert fast.simulate_chunk(chunk, tid=tid) == slow.simulate_chunk(
        chunk, tid=tid
    )


# ---------------------------------------------------------------------------
# page registry
# ---------------------------------------------------------------------------


@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=3),   # tid
            st.integers(min_value=0, max_value=3),   # frame
            st.integers(min_value=0, max_value=5),   # vpn
        ),
        max_size=60,
    )
)
def test_registry_refcount_equals_mapping_count(ops):
    registry = PageRegistry()
    live: set[tuple[int, int, int]] = set()
    for tid, frame, vpn in ops:
        key = (tid, frame, vpn)
        pa, va = frame * 4096, vpn * 4096
        if (tid, vpn) in {(t, v) for t, _, v in live}:
            mapped_frame = next(f for t, f, v in live if (t, v) == (tid, vpn))
            registry.remove(tid, mapped_frame * 4096, va)
            live.discard((tid, mapped_frame, vpn))
        else:
            registry.register(tid, pa, va)
            live.add(key)
    for frame in range(4):
        expected = sum(1 for _, f, _ in live if f == frame)
        assert registry.refcount(frame * 4096) == expected
    assert len(registry) == len(live)


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------


@given(
    denominator=st.sampled_from([1, 2, 4, 8]),
    seed=st.integers(min_value=0, max_value=100),
)
def test_sampler_selects_exact_fraction(denominator, seed):
    sampler = SetSampler(256, denominator, seed=seed)
    assert len(sampler.sampled_sets()) == 256 // denominator
    mask = sampler.mask_for_sets(np.arange(256))
    assert int(mask.sum()) == 256 // denominator


# ---------------------------------------------------------------------------
# scheduler
# ---------------------------------------------------------------------------


@given(
    user_weight=st.floats(min_value=0.05, max_value=0.95),
    seed=st.integers(min_value=0, max_value=50),
    total=st.integers(min_value=1000, max_value=50_000),
)
@settings(max_examples=30)
def test_scheduler_user_total_exact_for_any_seed(user_weight, seed, total):
    scheduler = Scheduler(
        quantum_refs=777,
        system_jitter=0.25,
        trial_rng=np.random.default_rng(seed),
    )
    demands = [
        Demand("u", Component.USER, user_weight),
        Demand("k", Component.KERNEL, 1.0 - user_weight),
    ]
    slices = list(scheduler.interleave(demands, total))
    user = sum(s.n_refs for s in slices if s.component is Component.USER)
    assert user == int(round(total * user_weight))


# ---------------------------------------------------------------------------
# trial statistics
# ---------------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_trial_stats_ordering_invariants(values):
    stats = TrialStats(values=tuple(values))
    # one-ULP tolerance: the mean of identical floats can round away
    slack = 1e-9 * max(1.0, abs(stats.mean))
    assert stats.minimum <= stats.mean + slack
    assert stats.mean <= stats.maximum + slack
    assert stats.value_range == stats.maximum - stats.minimum
    assert stats.stdev >= 0
