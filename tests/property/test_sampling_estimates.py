"""Validation: sampled estimates bracket full-stream ground truth.

The acceptance bar for ``repro.sampling``: across multiple workloads and
cache geometries, the sampled miss estimate's reported 95% confidence
interval contains the exact full-stream value, while simulating a strict
subset of the references.

Ground truth is the *exhaustive* interval sweep — every interval of
every trial measured through the identical warm-fork machinery, i.e. a
full-stream simulation that differs from the sampled run in exactly one
way: the plan selected a subset of intervals.  That isolates the error
this subsystem introduces (interval selection + stratified estimation)
from PR 5's fork machinery, which is separately proven bit-identical in
``tests/streams/``.  The exhaustive sweep itself agrees with a plain
``run_trap_driven`` full run at the shared seed to within a couple of
percent (checked below), so this is not a self-licking comparison.
"""

import statistics

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.sampling import build_plan, profile_workload, run_sampled_trials
from repro.sampling.runner import measure_interval
from repro.streams.session import StreamSession, enabled as streams_enabled
from repro.streams.store import StreamStore
from repro.workloads.registry import get_workload

#: >= 3 workloads x >= 2 cache geometries (the issue's validation grid)
WORKLOADS = ("espresso", "xlisp", "eqntott")
GEOMETRIES = {
    "16K-direct": CacheConfig(size_bytes=16 * 1024),
    "8K-2way": CacheConfig(size_bytes=8 * 1024, associativity=2),
}

TOTAL_REFS = 163_840  # 20 intervals of 8192
INTERVAL_REFS = 8_192
BASE_SEED = 100
N_TRIALS = 4


@pytest.fixture(scope="module")
def stream_session(tmp_path_factory):
    """One shared stream store: compile once, snapshot warm boundaries."""
    store = StreamStore(tmp_path_factory.mktemp("streams"))
    with streams_enabled(StreamSession(store=store)) as session:
        yield session


def _tapeworm(cache: CacheConfig) -> TapewormConfig:
    return TapewormConfig(cache=cache, sampling=8, sampling_seed=BASE_SEED)


def _options() -> RunOptions:
    return RunOptions(total_refs=TOTAL_REFS, trial_seed=BASE_SEED)


def _plan_for(spec):
    profile = profile_workload(spec, TOTAL_REFS, INTERVAL_REFS)
    return build_plan(profile, max_phases=4, per_phase=3, seed=BASE_SEED)


def _exhaustive_mean_misses(spec, tw_config, plan) -> float:
    """Ground truth: every interval of every trial, then average."""
    return statistics.mean(
        sum(
            measure_interval(
                spec, tw_config, _options(), plan, interval,
                trial_seed=BASE_SEED + trial, warm_seed=BASE_SEED,
            )["misses"]
            for interval in range(plan.n_intervals)
        )
        for trial in range(N_TRIALS)
    )


@pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
@pytest.mark.parametrize("workload", WORKLOADS)
def test_ci_brackets_ground_truth(workload, geometry, stream_session):
    spec = get_workload(workload)
    tw_config = _tapeworm(GEOMETRIES[geometry])
    plan = _plan_for(spec)
    result = run_sampled_trials(
        spec, tw_config, _options(), plan,
        n_trials=N_TRIALS, base_seed=BASE_SEED, warm_seed=BASE_SEED,
    )
    truth = _exhaustive_mean_misses(spec, tw_config, plan)

    analytic = result.estimates["misses"]
    assert analytic.brackets(truth), (
        f"{workload}/{geometry}: exact {truth:.1f} outside "
        f"[{analytic.ci_low:.1f}, {analytic.ci_high:.1f}]"
    )
    # the whole point: strictly fewer simulated refs than exact trials
    assert result.refs_simulated < result.exact_refs
    assert plan.selection_fraction < 1.0
    # estimates are marked as such, never as measurements
    bootstrap = result.estimates["misses.bootstrap"]
    assert not analytic.exact and not bootstrap.exact
    assert analytic.method == "stratified-t"
    assert bootstrap.method == "bootstrap"
    assert bootstrap.value == pytest.approx(analytic.value)


def test_exhaustive_sweep_agrees_with_full_run(stream_session):
    """The ground-truth construction is itself validated: summing every
    interval's measured misses reproduces a plain full-stream run at the
    shared seed to within ~10% — the residual is the per-interval
    measurement reseed (each fork re-arms jitter and frame RNGs, the
    continuous run never does), which is exactly the per-trial variance
    the estimator's trials average over."""
    spec = get_workload("xlisp")
    tw_config = _tapeworm(GEOMETRIES["16K-direct"])
    plan = _plan_for(spec)
    swept = sum(
        measure_interval(
            spec, tw_config, _options(), plan, interval,
            trial_seed=BASE_SEED, warm_seed=BASE_SEED,
        )["misses"]
        for interval in range(plan.n_intervals)
    )
    full = run_trap_driven(spec, tw_config, _options()).estimated_misses
    assert swept == pytest.approx(full, rel=0.10)


def test_sampled_point_estimate_is_close_not_just_bracketed(stream_session):
    """The CI shouldn't be doing all the work: on a well-phased workload
    the point estimate itself lands within 15% of ground truth."""
    spec = get_workload("xlisp")
    tw_config = _tapeworm(GEOMETRIES["16K-direct"])
    plan = _plan_for(spec)
    result = run_sampled_trials(
        spec, tw_config, _options(), plan,
        n_trials=N_TRIALS, base_seed=BASE_SEED, warm_seed=BASE_SEED,
    )
    truth = _exhaustive_mean_misses(spec, tw_config, plan)
    assert result.estimates["misses"].value == pytest.approx(truth, rel=0.15)
