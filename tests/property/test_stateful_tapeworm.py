"""Stateful property test: the trap-complement invariant under chaos.

A random interleaving of chunk execution, forks, exits, and attribute
flips must preserve Tapeworm's core invariant at every step: for every
location of a registered (and sampled) page, a trap is set **iff** the
location's line is absent from the simulated cache.  Any drift between
trap state and cache contents would silently corrupt miss counts — this
machine checks there is none.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro._types import Component, PAGE_SIZE
from repro.caches.config import CacheConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


class TapewormMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        machine = Machine(
            MachineConfig(memory_bytes=4 * 1024 * 1024, n_vpages=256)
        )
        self.kernel = Kernel(
            machine=machine, alloc_policy="random", trial_seed=7
        )
        self.tapeworm = Tapeworm(
            self.kernel,
            TapewormConfig(
                cache=CacheConfig(size_bytes=512),
                sampling=2,
                sampling_seed=1,
            ),
        )
        self.tapeworm.install()
        self.shell = self.kernel.spawn("shell", Component.USER)
        self.tapeworm.tw_attributes(self.shell.tid, simulate=0, inherit=1)
        self.live: list[int] = []
        self.counter = 0

    @rule(
        vpn=st.integers(min_value=0, max_value=7),
        offsets=st.lists(
            st.integers(min_value=0, max_value=1023), min_size=1, max_size=24
        ),
    )
    def execute(self, vpn, offsets):
        tids = self.live + [self.shell.tid]
        task = self.kernel.tasks.get(tids[self.counter % len(tids)])
        vas = np.array(
            [vpn * PAGE_SIZE + off * 4 for off in offsets], dtype=np.int64
        )
        self.kernel.run_chunk(task, vas)
        self.counter += 1

    @rule()
    def fork(self):
        if len(self.live) >= 4:
            return
        task = self.kernel.fork(self.shell.tid, f"child{self.counter}")
        self.counter += 1
        self.live.append(task.tid)

    @rule()
    def exit_one(self):
        if not self.live:
            return
        tid = self.live.pop(self.counter % len(self.live) if self.live else 0)
        self.kernel.exit_task(tid)

    @rule(simulate=st.booleans())
    def flip_shell_attribute(self, simulate):
        self.tapeworm.tw_attributes(
            self.shell.tid, simulate=int(simulate), inherit=1
        )

    @invariant()
    def trap_complements_cache(self):
        machine = self.kernel.machine
        cache = self.tapeworm.structure
        config = cache.config
        sampler = self.tapeworm.sampler
        registry = self.tapeworm.registry
        for table in machine.mmu.tables():
            for vpn in table.mapped_vpns():
                vpn = int(vpn)
                if not registry.is_registered_mapping(
                    table.tid, vpn * PAGE_SIZE
                ):
                    continue
                pa_page = table.frame_of(vpn) * PAGE_SIZE
                for offset in range(0, PAGE_SIZE, config.line_bytes):
                    pa = pa_page + offset
                    trapped = machine.ecc.is_trapped(pa)
                    cached = cache.contains(table.tid, pa)
                    if sampler.covers_set(config.set_of(pa)):
                        assert trapped != cached, (
                            f"tid={table.tid} pa={pa:#x}: "
                            f"trapped={trapped} cached={cached}"
                        )
                    else:
                        assert not trapped and not cached


TapewormMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=30, deadline=None
)
TestTapewormStateful = TapewormMachine.TestCase
