"""Property test: the TLB-mode page-trap invariant.

For every registered, sampled mapping: the page's valid bit is cleared
(a page trap is armed) **iff** its covering (super)page entry is absent
from the simulated TLB.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._types import Component, PAGE_SIZE
from repro.caches.config import TLBConfig
from repro.core.tapeworm import Tapeworm, TapewormConfig
from repro.kernel.kernel import Kernel
from repro.machine.machine import Machine, MachineConfig


def _check_invariant(kernel, tapeworm):
    tlb = tapeworm.tlb
    for table in kernel.machine.mmu.tables():
        for vpn in table.mapped_vpns():
            vpn = int(vpn)
            if not tapeworm.registry.is_registered_mapping(
                table.tid, vpn * PAGE_SIZE
            ):
                continue
            covered = tlb.contains(table.tid, vpn)
            trapped = table.is_page_trapped(vpn)
            superpage = tlb.superpage_of(vpn)
            if tapeworm.sampler.covers_set(
                superpage % tapeworm.config.tlb.n_sets
            ):
                assert trapped != covered, (table.tid, vpn)
            else:
                assert not trapped


@given(
    vpns=st.lists(
        st.integers(min_value=0, max_value=23), min_size=1, max_size=60
    ),
    n_entries=st.sampled_from([2, 4, 8]),
    pages_per_entry=st.sampled_from([1, 4]),
)
@settings(max_examples=25, deadline=None)
def test_page_traps_complement_simulated_tlb(vpns, n_entries, pages_per_entry):
    machine = Machine(
        MachineConfig(memory_bytes=4 * 1024 * 1024, n_vpages=128)
    )
    kernel = Kernel(machine=machine, alloc_policy="sequential")
    tapeworm = Tapeworm(
        kernel,
        TapewormConfig(
            structure="tlb",
            tlb=TLBConfig(
                n_entries=n_entries,
                page_bytes=pages_per_entry * PAGE_SIZE,
            ),
        ),
    )
    tapeworm.install()
    task = kernel.spawn("walker", Component.USER)
    tapeworm.tw_attributes(task.tid, simulate=1, inherit=0)
    for vpn in vpns:
        kernel.run_chunk(
            task, np.array([vpn * PAGE_SIZE + 4], dtype=np.int64)
        )
        _check_invariant(kernel, tapeworm)
