"""Phase clustering: k-means determinism and BIC model selection."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sampling.cluster import (
    cluster_intervals,
    kmeans,
    nearest_to_centroid,
    standardize,
)


def _blobs(k, per, spread=0.05, seed=7):
    """k well-separated Gaussian blobs in 2-D."""
    rng = np.random.default_rng(seed)
    centers = np.array([[float(i * 10), float(i * -10)] for i in range(k)])
    points = np.concatenate(
        [c + spread * rng.standard_normal((per, 2)) for c in centers]
    )
    return points


class TestStandardize:
    def test_zero_mean_unit_std(self):
        z = standardize(_blobs(3, 8))
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-12)
        assert np.allclose(z.std(axis=0), 1.0)

    def test_constant_feature_is_harmless(self):
        features = np.column_stack([np.arange(6.0), np.full(6, 3.0)])
        z = standardize(features)
        assert np.all(np.isfinite(z))
        assert np.allclose(z[:, 1], 0.0)


class TestKmeans:
    def test_recovers_separated_blobs(self):
        points = _blobs(3, 10)
        _, labels, inertia = kmeans(points, 3, seed=1)
        # each blob maps to exactly one cluster
        for blob in range(3):
            assert len(set(labels[blob * 10 : (blob + 1) * 10])) == 1
        assert inertia < 1.0

    def test_deterministic_given_seed(self):
        points = _blobs(2, 12)
        a = kmeans(points, 2, seed=5)
        b = kmeans(points, 2, seed=5)
        assert np.array_equal(a[1], b[1])
        assert np.allclose(a[0], b[0])
        assert a[2] == b[2]

    def test_k_one_is_the_mean(self):
        points = _blobs(2, 6)
        centroids, labels, _ = kmeans(points, 1, seed=0)
        assert np.allclose(centroids[0], points.mean(axis=0))
        assert set(labels.tolist()) == {0}

    def test_identical_points_dont_crash(self):
        points = np.ones((8, 3))
        _, labels, inertia = kmeans(points, 2, seed=0)
        assert inertia == 0.0
        assert len(labels) == 8

    def test_bad_k_rejected(self):
        points = _blobs(2, 4)
        with pytest.raises(ConfigError):
            kmeans(points, 0)
        with pytest.raises(ConfigError):
            kmeans(points, 9)


class TestClusterIntervals:
    def test_finds_the_planted_phase_count(self):
        clustering = cluster_intervals(_blobs(3, 10), max_phases=6, seed=0)
        assert clustering.k == 3
        assert clustering.phase_sizes.tolist() == [10, 10, 10]

    def test_homogeneous_stream_is_one_phase(self):
        rng = np.random.default_rng(3)
        points = rng.standard_normal((20, 4)) * 0.01
        clustering = cluster_intervals(points, max_phases=5, seed=0)
        assert clustering.k == 1

    def test_respects_max_phases_cap(self):
        clustering = cluster_intervals(_blobs(4, 8), max_phases=2, seed=0)
        assert clustering.k <= 2

    def test_single_interval_degenerates(self):
        clustering = cluster_intervals(np.array([[1.0, 2.0]]), max_phases=4)
        assert clustering.k == 1
        assert clustering.labels.tolist() == [0]

    def test_deterministic(self):
        points = _blobs(2, 16)
        a = cluster_intervals(points, max_phases=4, seed=9)
        b = cluster_intervals(points, max_phases=4, seed=9)
        assert a.k == b.k
        assert np.array_equal(a.labels, b.labels)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigError):
            cluster_intervals(_blobs(2, 4), max_phases=0)
        with pytest.raises(ConfigError):
            cluster_intervals(np.empty((0, 3)), max_phases=2)
        with pytest.raises(ConfigError):
            cluster_intervals(np.arange(4.0), max_phases=2)


class TestNearestToCentroid:
    def test_picks_the_closest_member(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        labels = np.array([0, 0, 1, 1])
        assert nearest_to_centroid(points, labels, np.array([0.4]), 0) == 0
        assert nearest_to_centroid(points, labels, np.array([10.9]), 1) == 3

    def test_empty_phase_rejected(self):
        points = np.array([[0.0], [1.0]])
        labels = np.array([0, 0])
        with pytest.raises(ConfigError):
            nearest_to_centroid(points, labels, np.array([0.0]), 1)
