"""Stratified + bootstrap estimators: math checked against hand results."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sampling.estimator import (
    Estimate,
    bootstrap_estimate,
    estimate_run,
    exact_estimate,
    stratified_estimate,
    t_critical,
)


class TestTCritical:
    def test_table_values(self):
        assert t_critical(1) == pytest.approx(12.706)
        assert t_critical(10) == pytest.approx(2.228)
        assert t_critical(30) == pytest.approx(2.042)

    def test_large_df_uses_normal_limit(self):
        assert t_critical(31) == pytest.approx(1.960)
        assert t_critical(10_000) == pytest.approx(1.960)

    def test_zero_df_is_infinite(self):
        assert t_critical(0) == np.inf


class TestEstimate:
    def test_brackets(self):
        e = Estimate("m", 10.0, 8.0, 12.0, "stratified-t")
        assert e.brackets(10.0) and e.brackets(8.0) and e.brackets(12.0)
        assert not e.brackets(7.9)

    def test_inverted_ci_rejected(self):
        with pytest.raises(ConfigError):
            Estimate("m", 10.0, 12.0, 8.0, "stratified-t")

    def test_half_width_pct(self):
        e = Estimate("m", 100.0, 90.0, 110.0, "stratified-t")
        assert e.ci_half_width_pct == pytest.approx(10.0)

    def test_scaled_flips_negative_factor(self):
        e = Estimate("cycles", 100.0, 90.0, 110.0, "stratified-t")
        s = e.scaled(-2.0, "neg")
        assert s.metric == "neg"
        assert (s.ci_low, s.ci_high) == (-220.0, -180.0)

    def test_exact_estimate_is_degenerate(self):
        e = exact_estimate("misses", 42.0)
        assert e.exact and e.value == e.ci_low == e.ci_high == 42.0
        assert e.to_manifest() == {
            "value": 42.0, "ci_low": 42.0, "ci_high": 42.0,
            "method": "exact", "exact": True,
        }


class TestStratified:
    def test_single_stratum_matches_textbook_t_interval(self):
        rates = [0.1, 0.2, 0.3, 0.4]
        e = stratified_estimate("m", {0: rates}, {0: 1.0}, scale=100.0)
        mean, n = np.mean(rates), len(rates)
        sem = np.std(rates, ddof=1) / np.sqrt(n)
        assert e.value == pytest.approx(100.0 * mean)
        assert e.ci_high - e.value == pytest.approx(
            t_critical(n - 1) * 100.0 * sem
        )
        assert e.method == "stratified-t" and not e.exact
        assert e.n_samples == 4

    def test_weights_combine_strata(self):
        e = stratified_estimate(
            "m",
            {0: [0.1, 0.1], 1: [0.5, 0.5]},
            {0: 0.75, 1: 0.25},
            scale=1000.0,
        )
        assert e.value == pytest.approx(1000.0 * (0.75 * 0.1 + 0.25 * 0.5))
        # zero within-stratum variance -> zero-width interval
        assert e.ci_low == pytest.approx(e.value)
        assert e.ci_high == pytest.approx(e.value)

    def test_singleton_stratum_borrows_pooled_variance(self):
        wide = stratified_estimate(
            "m", {0: [0.1, 0.3], 1: [0.2]}, {0: 0.5, 1: 0.5}, scale=100.0
        )
        assert wide.ci_high > wide.ci_low  # the singleton is not free

    def test_missing_weight_and_empty_rejected(self):
        with pytest.raises(ConfigError):
            stratified_estimate("m", {0: [0.1]}, {}, scale=1.0)
        with pytest.raises(ConfigError):
            stratified_estimate("m", {}, {0: 1.0}, scale=1.0)
        with pytest.raises(ConfigError):
            stratified_estimate("m", {0: []}, {0: 1.0}, scale=1.0)


class TestBootstrap:
    def test_point_estimate_inside_its_interval(self):
        rng = np.random.default_rng(0)
        rates = rng.uniform(0.0, 1.0, size=8).tolist()
        e = bootstrap_estimate("m", {0: rates}, {0: 1.0}, scale=50.0, seed=3)
        assert e.brackets(e.value)
        assert e.method == "bootstrap"

    def test_deterministic_given_seed(self):
        obs = {0: [0.1, 0.4, 0.2], 1: [0.9, 0.8]}
        w = {0: 0.6, 1: 0.4}
        a = bootstrap_estimate("m", obs, w, scale=10.0, seed=7)
        b = bootstrap_estimate("m", obs, w, scale=10.0, seed=7)
        assert (a.ci_low, a.ci_high) == (b.ci_low, b.ci_high)

    def test_agrees_with_stratified_point_value(self):
        obs = {0: [0.1, 0.4, 0.2], 1: [0.9, 0.8]}
        w = {0: 0.6, 1: 0.4}
        boot = bootstrap_estimate("m", obs, w, scale=10.0)
        strat = stratified_estimate("m", obs, w, scale=10.0)
        assert boot.value == pytest.approx(strat.value)

    def test_bad_n_boot_rejected(self):
        with pytest.raises(ConfigError):
            bootstrap_estimate("m", {0: [0.1]}, {0: 1.0}, 1.0, n_boot=0)


class TestEstimateRun:
    def _measurements(self):
        return [
            {"interval": 0, "phase": 0, "refs": 100, "misses": 10,
             "traps": 2, "overhead_cycles": 500},
            {"interval": 1, "phase": 0, "refs": 110, "misses": 11,
             "traps": 2, "overhead_cycles": 550},
            {"interval": 4, "phase": 1, "refs": 100, "misses": 50,
             "traps": 9, "overhead_cycles": 2000},
            {"interval": 5, "phase": 1, "refs": 90, "misses": 45,
             "traps": 8, "overhead_cycles": 1800},
        ]

    def test_produces_analytic_and_bootstrap_pairs(self):
        estimates = estimate_run(
            self._measurements(), {0: 0.5, 1: 0.5}, total_refs=10_000
        )
        for metric in ("misses", "traps", "overhead_cycles"):
            assert metric in estimates
            assert f"{metric}.bootstrap" in estimates
        # phase 0 misses at 0.1/ref, phase 1 at 0.5/ref, equal weights
        assert estimates["misses"].value == pytest.approx(
            10_000 * (0.5 * 0.1 + 0.5 * 0.5)
        )

    def test_rates_not_counts(self):
        # doubling refs and counts together changes nothing
        doubled = [
            {**m, "refs": m["refs"] * 2, "misses": m["misses"] * 2,
             "traps": m["traps"] * 2,
             "overhead_cycles": m["overhead_cycles"] * 2}
            for m in self._measurements()
        ]
        a = estimate_run(self._measurements(), {0: 0.5, 1: 0.5}, 10_000)
        b = estimate_run(doubled, {0: 0.5, 1: 0.5}, 10_000)
        assert a["misses"].value == pytest.approx(b["misses"].value)

    def test_repeating_trials_does_not_shrink_the_ci(self):
        # the same two intervals simulated across many trials: the CI is
        # governed by between-interval spread, so more trials of the
        # same intervals must not narrow it toward zero
        few = estimate_run(self._measurements(), {0: 0.5, 1: 0.5}, 10_000)
        many = estimate_run(
            self._measurements() * 8, {0: 0.5, 1: 0.5}, 10_000
        )
        few_width = few["misses"].ci_high - few["misses"].ci_low
        many_width = many["misses"].ci_high - many["misses"].ci_low
        assert many_width == pytest.approx(few_width)

    def test_empty_and_zero_ref_measurements_rejected(self):
        with pytest.raises(ConfigError):
            estimate_run([], {0: 1.0}, 100)
        with pytest.raises(ConfigError):
            estimate_run(
                [{"interval": 0, "phase": 0, "refs": 0, "misses": 0,
                  "traps": 0, "overhead_cycles": 0}],
                {0: 1.0},
                100,
            )
