"""Sampling plans: selection invariants and JSON round-trips."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sampling.plan import PhaseSample, SamplingPlan, build_plan
from repro.sampling.profile import profile_addresses


def _profile(n_lines=256, interval_refs=32):
    """A stream with a streaming phase and a hot-loop phase."""
    lines = list(range(n_lines // 2)) + [9999] * (n_lines // 2)
    addresses = np.asarray(lines, dtype=np.int64) * 16
    return profile_addresses(
        addresses, interval_refs=interval_refs, workload="synthetic"
    )


def _plan(**overrides):
    base = dict(
        workload="w", task="t", total_refs=64, interval_refs=16,
        n_intervals=4, n_phases=2, labels=(0, 0, 1, 1),
        samples=(
            PhaseSample(interval=0, phase=0, role="centroid"),
            PhaseSample(interval=3, phase=1, role="centroid"),
        ),
    )
    base.update(overrides)
    return SamplingPlan(**base)


class TestPlanInvariants:
    def test_label_count_must_match(self):
        with pytest.raises(ConfigError):
            _plan(labels=(0, 1))

    def test_needs_at_least_one_sample(self):
        with pytest.raises(ConfigError):
            _plan(samples=())

    def test_duplicate_intervals_rejected(self):
        dup = PhaseSample(interval=1, phase=0, role="random")
        with pytest.raises(ConfigError):
            _plan(samples=(dup, dup))

    def test_out_of_range_interval_rejected(self):
        with pytest.raises(ConfigError):
            _plan(samples=(PhaseSample(interval=4, phase=0, role="random"),))

    def test_geometry_helpers(self):
        plan = _plan()
        assert plan.phase_sizes() == {0: 2, 1: 2}
        assert plan.start_of(3) == 48
        assert plan.boundaries() == (0, 48)
        assert plan.selected_refs == 32
        assert plan.selection_fraction == pytest.approx(0.5)
        by_phase = plan.samples_by_phase()
        assert set(by_phase) == {0, 1}


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        plan = _plan()
        assert SamplingPlan.from_dict(plan.to_dict()) == plan

    def test_dumps_is_json(self):
        import json

        payload = json.loads(_plan().dumps())
        assert payload["workload"] == "w"
        assert payload["samples"][0]["role"] == "centroid"

    def test_malformed_payload_rejected(self):
        with pytest.raises(ConfigError):
            SamplingPlan.from_dict({"workload": "w"})
        payload = _plan().to_dict()
        payload["samples"] = "nope"
        with pytest.raises(ConfigError):
            SamplingPlan.from_dict(payload)


class TestBuildPlan:
    def test_every_phase_gets_a_centroid_anchor(self):
        plan = build_plan(_profile(), per_phase=2, seed=0)
        by_phase = plan.samples_by_phase()
        assert set(by_phase) == set(range(plan.n_phases))
        for phase_samples in by_phase.values():
            roles = [s.role for s in phase_samples]
            assert roles.count("centroid") == 1

    def test_per_phase_caps_selection(self):
        plan = build_plan(_profile(), per_phase=2, seed=0)
        for phase_samples in plan.samples_by_phase().values():
            assert len(phase_samples) <= 2

    def test_small_phase_contributes_every_member(self):
        plan = build_plan(_profile(), per_phase=100, seed=0)
        sizes = plan.phase_sizes()
        for phase, phase_samples in plan.samples_by_phase().items():
            assert len(phase_samples) == sizes[phase]

    def test_samples_sorted_and_labeled_consistently(self):
        plan = build_plan(_profile(), seed=0)
        intervals = [s.interval for s in plan.samples]
        assert intervals == sorted(intervals)
        for sample in plan.samples:
            assert plan.labels[sample.interval] == sample.phase

    def test_deterministic_given_seed(self):
        assert build_plan(_profile(), seed=4) == build_plan(_profile(), seed=4)

    def test_bad_per_phase_rejected(self):
        with pytest.raises(ConfigError):
            build_plan(_profile(), per_phase=0)
