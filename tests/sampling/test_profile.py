"""Interval profiler: feature semantics on hand-built address streams."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sampling.profile import (
    FEATURE_NAMES,
    REUSE_BUCKET_EDGES,
    IntervalProfile,
    _previous_occurrence,
    profile_addresses,
)

_LINE = 16  # line_bytes used throughout


def _addresses(lines):
    """Line numbers -> byte addresses (one ref per line touch)."""
    return np.asarray(lines, dtype=np.int64) * _LINE


class TestPreviousOccurrence:
    def test_first_touches_are_minus_one(self):
        prev = _previous_occurrence(np.array([7, 8, 9], dtype=np.int64))
        assert prev.tolist() == [-1, -1, -1]

    def test_repeats_point_at_the_previous_position(self):
        prev = _previous_occurrence(np.array([5, 6, 5, 5], dtype=np.int64))
        assert prev.tolist() == [-1, -1, 0, 2]

    def test_empty_and_single(self):
        assert _previous_occurrence(np.array([], dtype=np.int64)).tolist() == []
        assert _previous_occurrence(np.array([3], dtype=np.int64)).tolist() == [-1]


class TestGeometry:
    def test_even_split(self):
        profile = profile_addresses(_addresses(range(8)), interval_refs=4)
        assert profile.n_intervals == 2
        assert profile.total_refs == 8
        assert profile.features.shape == (2, len(FEATURE_NAMES))

    def test_tail_merges_into_last_interval(self):
        # 10 refs at 4/interval: intervals are [0,4), [4,10)
        profile = profile_addresses(_addresses(range(10)), interval_refs=4)
        assert profile.n_intervals == 2

    def test_short_stream_is_one_interval(self):
        profile = profile_addresses(_addresses(range(3)), interval_refs=100)
        assert profile.n_intervals == 1

    def test_rejects_empty_and_bad_args(self):
        with pytest.raises(ConfigError):
            profile_addresses(np.array([], dtype=np.int64), interval_refs=4)
        with pytest.raises(ConfigError):
            profile_addresses(_addresses([1]), interval_refs=0)
        with pytest.raises(ConfigError):
            profile_addresses(_addresses([1]), interval_refs=4, line_bytes=24)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            IntervalProfile(
                workload="w", task="t", interval_refs=4, n_intervals=3,
                total_refs=12, features=np.zeros((2, len(FEATURE_NAMES))),
            )


class TestFeatures:
    def test_all_new_lines(self):
        profile = profile_addresses(_addresses(range(8)), interval_refs=8)
        row = profile.rows()[0]
        assert row["new_line_rate"] == 1.0
        assert row["unique_line_rate"] == 1.0
        assert row["reuse_far"] == 0.0

    def test_single_hot_line(self):
        profile = profile_addresses(_addresses([3] * 8), interval_refs=8)
        row = profile.rows()[0]
        assert row["new_line_rate"] == pytest.approx(1 / 8)
        assert row["unique_line_rate"] == pytest.approx(1 / 8)
        # 7 reuses, each at distance 1 -> first bucket
        assert row[f"reuse_le_{REUSE_BUCKET_EDGES[0]}"] == pytest.approx(7 / 8)
        assert row["mean_log2_stride"] == 0.0

    def test_new_line_counts_only_first_ever_touch(self):
        # second interval re-touches the first interval's lines: nothing
        # is new, but every line is a first touch *within* its interval
        profile = profile_addresses(
            _addresses([0, 1, 2, 3, 0, 1, 2, 3]), interval_refs=4
        )
        first, second = profile.rows()
        assert first["new_line_rate"] == 1.0
        assert second["new_line_rate"] == 0.0
        assert second["unique_line_rate"] == 1.0

    def test_reuse_distance_buckets(self):
        # line 0 touched at positions 0 and 9: distance 9 -> second bucket
        lines = [0] + list(range(1, 9)) + [0]
        profile = profile_addresses(_addresses(lines), interval_refs=10)
        row = profile.rows()[0]
        edge = REUSE_BUCKET_EDGES[1]
        assert row[f"reuse_le_{edge}"] == pytest.approx(1 / 10)

    def test_distinct_phases_get_distinct_features(self):
        # a streaming phase then a hot-loop phase
        streaming = list(range(64))
        hot = [100] * 64
        profile = profile_addresses(
            _addresses(streaming + hot), interval_refs=64
        )
        a, b = profile.features
        assert not np.allclose(a, b)

    def test_rows_match_feature_names(self):
        profile = profile_addresses(_addresses(range(8)), interval_refs=4)
        for row in profile.rows():
            assert tuple(row) == FEATURE_NAMES
