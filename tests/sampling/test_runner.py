"""Sampled trial runner: interval measurement, estimates, guard rails."""

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.faults.session import enabled as faults_enabled
from repro.harness.runner import RunOptions
from repro.sampling import build_plan, profile_workload, run_sampled_trials
from repro.sampling.runner import interval_trial_seed, measure_interval
from repro.streams.session import enabled as streams_enabled
from repro.streams.session import StreamSession
from repro.streams.store import StreamStore
from repro.workloads.registry import get_workload

TOTAL_REFS = 81_920  # 10 intervals, so plans genuinely skip refs
INTERVAL_REFS = 8_192
SEED = 100


def _config(seed=SEED):
    return TapewormConfig(
        cache=CacheConfig(size_bytes=16 * 1024), sampling=8, sampling_seed=seed
    )


def _setup(workload="espresso"):
    spec = get_workload(workload)
    options = RunOptions(total_refs=TOTAL_REFS, trial_seed=SEED)
    profile = profile_workload(spec, TOTAL_REFS, INTERVAL_REFS)
    plan = build_plan(profile, max_phases=2, per_phase=2, seed=SEED)
    return spec, options, plan


class TestSeeds:
    def test_interval_seeds_never_collide_across_nearby_trials(self):
        seeds = {
            interval_trial_seed(trial, interval)
            for trial in range(64)
            for interval in range(64)
        }
        assert len(seeds) == 64 * 64


class TestMeasureInterval:
    def test_counters_are_interval_deltas(self):
        spec, options, plan = _setup()
        m = measure_interval(
            spec, _config(), options, plan, plan.samples[0].interval,
            trial_seed=SEED, warm_seed=SEED,
        )
        assert m["refs"] >= INTERVAL_REFS  # chunk boundaries overshoot
        assert m["refs"] < TOTAL_REFS
        assert m["misses"] >= 0 and m["traps"] >= 0
        assert m["phase"] == plan.labels[plan.samples[0].interval]

    def test_last_interval_owns_the_tail(self):
        spec, options, plan = _setup()
        last = plan.n_intervals - 1
        m = measure_interval(
            spec, _config(), options, plan, last,
            trial_seed=SEED, warm_seed=SEED,
        )
        # without a stream session the warm prefix is replayed fresh, so
        # warm_refs is the exact position measurement began at; the last
        # interval must carry the run through total_refs
        assert m["warm_refs"] + m["refs"] >= TOTAL_REFS

    def test_out_of_range_interval_rejected(self):
        spec, options, plan = _setup()
        with pytest.raises(ConfigError):
            measure_interval(
                spec, _config(), options, plan, plan.n_intervals,
                trial_seed=SEED,
            )

    def test_deterministic_given_seeds(self):
        spec, options, plan = _setup()
        interval = plan.samples[0].interval
        a = measure_interval(
            spec, _config(), options, plan, interval,
            trial_seed=SEED, warm_seed=SEED,
        )
        b = measure_interval(
            spec, _config(), options, plan, interval,
            trial_seed=SEED, warm_seed=SEED,
        )
        assert a == b


class TestRunSampledTrials:
    def test_produces_bracketing_estimates_and_reduction(self):
        spec, options, plan = _setup()
        result = run_sampled_trials(
            spec, _config(), options, plan,
            n_trials=3, base_seed=SEED, warm_seed=SEED,
        )
        assert set(result.estimates) >= {
            "misses", "misses.bootstrap", "traps", "overhead_cycles",
            "slowdown",
        }
        for estimate in result.estimates.values():
            assert not estimate.exact
            assert estimate.brackets(estimate.value)
        assert result.refs_simulated < result.exact_refs
        assert len(result.measurements) == 3 * len(plan.samples)
        manifest = result.estimates_manifest()
        assert manifest["misses"]["exact"] is False

    def test_snapshots_amortize_warm_refs(self, tmp_path):
        spec, options, plan = _setup()
        with streams_enabled(
            StreamSession(store=StreamStore(tmp_path / "streams"))
        ):
            warmed = run_sampled_trials(
                spec, _config(), options, plan,
                n_trials=3, base_seed=SEED, warm_seed=SEED,
            )
        cold = run_sampled_trials(
            spec, _config(), options, plan,
            n_trials=3, base_seed=SEED, warm_seed=SEED,
        )
        # identical estimates either way; snapshots only cut warm cost
        assert warmed.estimates["misses"].value == pytest.approx(
            cold.estimates["misses"].value
        )
        assert warmed.warm_refs < cold.warm_refs

    def test_fault_session_is_an_error(self):
        spec, options, plan = _setup()
        with faults_enabled(FaultPlan()):
            with pytest.raises(ConfigError, match="fault-injection"):
                run_sampled_trials(
                    spec, _config(), options, plan, n_trials=1
                )

    def test_mismatched_plan_rejected(self):
        spec, options, plan = _setup()
        other = get_workload("xlisp")
        with pytest.raises(ConfigError, match="workload"):
            run_sampled_trials(other, _config(), options, plan, n_trials=1)
        short = RunOptions(total_refs=TOTAL_REFS // 2, trial_seed=SEED)
        with pytest.raises(ConfigError, match="refs"):
            run_sampled_trials(spec, _config(), short, plan, n_trials=1)
        with pytest.raises(ConfigError, match="n_trials"):
            run_sampled_trials(spec, _config(), options, plan, n_trials=0)
