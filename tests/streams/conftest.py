"""Shared fixtures for the stream-store suite."""

import pytest

from repro.streams import StreamSession, StreamStore
from repro.streams.session import active, deactivate


@pytest.fixture(autouse=True)
def _no_leaked_session():
    """Fail loudly if a test leaks the process-wide stream session."""
    assert active() is None, "a stream session leaked into this test"
    yield
    if active() is not None:  # pragma: no cover - defensive cleanup
        deactivate()
        pytest.fail("test leaked an active stream session")


@pytest.fixture
def session(tmp_path):
    """A fresh session backed by a store in the test's tmp directory."""
    return StreamSession(store=StreamStore(tmp_path / "streams"))
