"""Crash consistency: a writer killed mid-put never corrupts the store."""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.streams import StreamStore
from repro.streams.store import blob_crc


class TestKillMidWrite:
    def test_killed_writer_never_tears_a_blob(self, tmp_path):
        """SIGKILL a process looping over puts; every committed
        (sidecar-present) blob must still verify, and the acknowledged
        first put must be durable.  Tested with a real SIGKILL — the
        blob-then-sidecar commit protocol is the claim under test."""
        script = textwrap.dedent(
            """
            import sys
            import numpy as np
            from repro.streams import StreamStore

            store = StreamStore(sys.argv[1])
            i = 0
            while True:
                blob = np.full(200_000, i, dtype=np.int64)
                store.put(f"key-{i}", blob)
                if i == 0:
                    print("first-write-done", flush=True)
                i += 1
            """
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "first-write-done"
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=10)

        survivors = StreamStore(tmp_path)
        # the acknowledged first put is durable and bit-correct
        first = survivors.get("key-0")
        assert first is not None
        assert first[0] == 0 and len(first) == 200_000
        # every committed blob verifies; uncommitted blobs read as
        # misses, not corruption
        committed = sorted(tmp_path.glob("*.json"))
        assert committed, "no sidecar survived the kill"
        for sidecar_path in committed:
            sidecar = json.loads(sidecar_path.read_text())
            blob = tmp_path / f"{sidecar['key']}.npy"
            data = blob.read_bytes()
            assert len(data) == sidecar["blob_bytes"]
            assert blob_crc(data) == sidecar["crc"]
            assert survivors.get(sidecar["key"]) is not None
        assert survivors.corrupt == 0, "a torn blob escaped the protocol"

    def test_leftover_tmp_files_are_invisible_and_clearable(self, tmp_path):
        """A crash inside atomic_write leaves ``*.tmp`` litter at worst;
        it must never read as a blob, and ``clear`` sweeps it."""
        store = StreamStore(tmp_path)
        import numpy as np

        store.put("good", np.arange(10, dtype=np.int64))
        (tmp_path / "orphan.npy.tmp").write_bytes(b"partial write")
        fresh = StreamStore(tmp_path)
        assert fresh.stats()["blobs"] == 1
        fresh.clear()
        assert list(tmp_path.glob("*.tmp")) == []
