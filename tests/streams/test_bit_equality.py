"""Compiled replay is bit-identical to live generation — everywhere.

The whole store rests on the *prefix property*: a stream's output is
independent of how it is chunked, so a precompiled prefix sliced back
out equals the generator called live.  These tests pin that at three
levels: the raw generators (every registered workload, every task,
irregular chunking), full trap-driven runs (session on vs off, cache
and TLB structures), and the Pixie tracer.
"""

import numpy as np
import pytest

from repro.caches.config import CacheConfig, TLBConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.streams import (
    StreamSession,
    StreamStore,
    build_live_stream,
    compile_stream,
)
from repro.streams.session import enabled
from repro.tracing.pixie import PixieTracer
from repro.workloads import WORKLOAD_NAMES, get_workload

_REFS = 30_000


def _report_signature(report):
    """Every result-bearing field of a TrapRunReport, hashable."""
    return (
        report.workload,
        report.configuration,
        report.trial_seed,
        dict(report.stats.misses),
        report.stats.total_misses,
        report.estimated_misses,
        report.base_cycles,
        report.overhead_cycles,
        report.slowdown,
        report.traps,
        report.masked_traps,
        report.page_faults,
        report.ticks,
        dict(report.refs),
    )


class TestGeneratorPrefixProperty:
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_compiled_prefix_matches_irregular_chunking(self, workload):
        """For every task of every workload: compile N refs in one pass,
        then regenerate them live with awkward chunk sizes."""
        spec = get_workload(workload)
        sizes = [1, 4095, 7, 4096, 8192, 1, 13000]
        for task_name in spec.tasks:
            task = spec.task(task_name)
            compiled = compile_stream(
                build_live_stream(spec.name, task, False), _REFS
            )
            live = build_live_stream(spec.name, task, False)
            cursor = 0
            for size in sizes:
                n = min(size, _REFS - cursor)
                if n <= 0:
                    break
                chunk = np.asarray(live.next_chunk(n))
                assert np.array_equal(
                    chunk, compiled[cursor : cursor + n]
                ), f"{workload}/{task_name} diverged at ref {cursor}"
                cursor += n

    def test_data_interleave_has_the_prefix_property_too(self):
        spec = get_workload("xlisp")
        for task_name in spec.tasks:
            task = spec.task(task_name)
            if not task.data_shapes:
                continue
            compiled = compile_stream(
                build_live_stream(spec.name, task, True), _REFS
            )
            live = build_live_stream(spec.name, task, True)
            regenerated = np.concatenate(
                [np.asarray(live.next_chunk(n)) for n in (7, 4096, 25897)]
            )
            assert np.array_equal(compiled, regenerated)


class TestTrapDrivenRuns:
    @pytest.mark.parametrize("workload", ("espresso", "sdet"))
    def test_cache_run_identical_with_session_on(self, workload, tmp_path):
        spec = get_workload(workload)
        config = TapewormConfig(cache=CacheConfig(size_bytes=4096))
        options = RunOptions(total_refs=_REFS, trial_seed=3)
        baseline = run_trap_driven(spec, config, options)
        store = StreamStore(tmp_path / "s")
        with enabled(StreamSession(store=store)) as session:
            cold = run_trap_driven(spec, config, options)
            assert session.compiles > 0
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            warm = run_trap_driven(spec, config, options)
        assert _report_signature(cold) == _report_signature(baseline)
        assert _report_signature(warm) == _report_signature(baseline)

    def test_tlb_run_with_data_refs_identical(self, tmp_path):
        spec = get_workload("xlisp")
        config = TapewormConfig(
            structure="tlb", tlb=TLBConfig(n_entries=32)
        )
        options = RunOptions(
            total_refs=_REFS, trial_seed=1, include_data_refs=True
        )
        baseline = run_trap_driven(spec, config, options)
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            replayed = run_trap_driven(spec, config, options)
        assert _report_signature(replayed) == _report_signature(baseline)

    def test_disabled_store_still_replays_identically(self, tmp_path):
        """--no-stream-cache: in-memory compile only, same results."""
        spec = get_workload("espresso")
        config = TapewormConfig(cache=CacheConfig(size_bytes=4096))
        options = RunOptions(total_refs=_REFS, trial_seed=5)
        baseline = run_trap_driven(spec, config, options)
        store = StreamStore(tmp_path / "s", enabled=False)
        with enabled(StreamSession(store=store)):
            replayed = run_trap_driven(spec, config, options)
        assert _report_signature(replayed) == _report_signature(baseline)
        assert list((tmp_path / "s").glob("*.npy")) == []

    def test_margin_overflow_falls_back_bit_identically(self):
        """A cursor that outruns its compiled prefix switches to a live
        generator fast-forwarded to the same point — slower, never
        wrong."""
        from repro.streams import CompiledStream

        spec = get_workload("espresso")
        task = spec.task(spec.primary_task)
        compiled = compile_stream(
            build_live_stream(spec.name, task, False), 10_000
        )
        stream = CompiledStream(
            compiled,
            lambda: build_live_stream(spec.name, task, False),
        )
        replayed = np.concatenate(
            [np.asarray(stream.next_chunk(n)) for n in (6000, 5000, 4000)]
        )
        live = build_live_stream(spec.name, task, False)
        assert np.array_equal(replayed, np.asarray(live.next_chunk(15_000)))


class TestPixieTracer:
    def test_traced_chunks_identical_with_session_on(self, tmp_path):
        spec = get_workload("mpeg_play")
        baseline = PixieTracer(spec).full_trace(_REFS)
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            cold = PixieTracer(spec).full_trace(_REFS)
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            warm = PixieTracer(spec).full_trace(_REFS)
        assert np.array_equal(cold, baseline)
        assert np.array_equal(warm, baseline)
