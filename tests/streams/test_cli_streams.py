"""The ``repro streams`` CLI surface and the run-command flags."""

import json

import pytest

from repro.cli import main
from repro.streams.session import active


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Commands write stores and manifests relative to the cwd; keep
    test runs out of the repository checkout."""
    monkeypatch.chdir(tmp_path)


class TestWarmStatsClear:
    def test_warm_then_stats_then_clear(self, capsys):
        assert (
            main(
                [
                    "streams", "warm", "--workload", "espresso",
                    "--refs", "20000", "--stream-dir", "store",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "warmed 1 workload(s)" in out
        assert "stream(s) compiled" in out

        assert main(["streams", "stats", "--stream-dir", "store"]) == 0
        stats_out = capsys.readouterr().out
        assert "blobs" in stats_out
        assert "store" in stats_out

        assert main(["streams", "clear", "--stream-dir", "store"]) == 0
        clear_out = capsys.readouterr().out
        assert "dropped" in clear_out

        assert main(["streams", "stats", "--stream-dir", "store"]) == 0
        blobs_line = next(
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("blobs")
        )
        assert blobs_line.endswith(": 0")

    def test_warm_is_idempotent(self, capsys):
        args = [
            "streams", "warm", "--workload", "espresso",
            "--refs", "20000", "--stream-dir", "store",
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0  # second warm maps, compiles nothing
        assert "0 stream(s) compiled" in capsys.readouterr().out


class TestRunFlags:
    _RUN = [
        "run", "--workload", "espresso", "--cache-size", "4K",
        "--refs", "20000",
    ]

    def test_run_populates_the_store_by_default(self, tmp_path, capsys):
        code = main(self._RUN + ["--stream-dir", "store"])
        assert code == 0
        assert list((tmp_path / "store").glob("*.npy"))
        assert active() is None  # session torn down after the command

    def test_no_stream_cache_leaves_no_store_behind(self, tmp_path, capsys):
        code = main(
            self._RUN + ["--no-stream-cache", "--stream-dir", "store"]
        )
        assert code == 0
        assert not list((tmp_path / "store").glob("*.npy"))

    def test_flagged_and_unflagged_runs_agree(self, capsys):
        assert main(self._RUN + ["--stream-dir", "store"]) == 0
        cached = capsys.readouterr().out
        assert main(self._RUN + ["--no-stream-cache"]) == 0
        uncached = capsys.readouterr().out
        assert cached == uncached

    def test_second_run_hits_the_store_and_reports_it(self, capsys):
        """streams.* metrics land in the --metrics-out snapshot; the
        second run must show store hits and identical output."""
        args = self._RUN + ["--stream-dir", "store", "--metrics-out", "-"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0
        second = capsys.readouterr().out

        def split(out):
            brace = out.index("{")
            return out[:brace], json.loads(out[brace:])

        first_text, first_metrics = split(first)
        second_text, second_metrics = split(second)
        assert first_text == second_text  # byte-identical simulation
        hits = [
            value
            for name, value in second_metrics.items()
            if name.startswith("streams.hits") and "store" in name
        ]
        assert hits and sum(hits) > 0, second_metrics

    def test_stream_and_result_caches_compose(self, capsys):
        """--no-cache (farm results) and --no-stream-cache (stream
        blobs) are independent: reproduce accepts any combination and
        every combination renders the same table."""
        base = [
            "reproduce", "table7", "--budget", "tiny", "--jobs", "2",
            "--no-manifest",
        ]

        def table_of(out):
            lines = []
            for line in out.splitlines():
                if line.startswith("farm ("):
                    break  # the farm summary carries wall-clock noise
                lines.append(line)
            return "\n".join(lines)

        tables = []
        for extra in ([], ["--no-cache"], ["--no-stream-cache"],
                      ["--no-cache", "--no-stream-cache"]):
            assert main(base + extra) == 0, extra
            tables.append(table_of(capsys.readouterr().out))
        assert tables.count(tables[0]) == len(tables)
