"""Stream fingerprints: stable across processes, sensitive to the spec."""

import re

from repro.streams import stream_descriptor, stream_fingerprint
from repro.streams.keys import (
    MIX_GEOMETRY,
    STREAM_CODE_VERSION,
    STREAM_MARGIN,
    compile_refs_for,
    fingerprint_payload,
)
from repro.workloads import get_workload

HEX64 = re.compile(r"^[0-9a-f]{64}$")


class TestFingerprint:
    def test_is_a_sha256_hex_digest(self):
        spec = get_workload("espresso")
        key = stream_fingerprint(spec, spec.primary_task, 1000)
        assert HEX64.match(key)

    def test_deterministic_across_spec_instances(self):
        """Two independently built specs agree — the property that lets
        separate processes share one blob."""
        a = get_workload("espresso")
        b = get_workload("espresso")
        task = a.primary_task
        assert stream_fingerprint(a, task, 5000) == stream_fingerprint(
            b, task, 5000
        )

    def test_sensitive_to_every_input(self):
        spec = get_workload("espresso")
        other = get_workload("xlisp")
        task = spec.primary_task
        base = stream_fingerprint(spec, task, 5000)
        assert stream_fingerprint(other, other.primary_task, 5000) != base
        assert stream_fingerprint(spec, task, 5001) != base
        assert stream_fingerprint(spec, task, 5000, True) != base
        assert stream_fingerprint(spec, task, 5000, salt="v999") != base

    def test_tasks_of_one_workload_get_distinct_keys(self):
        spec = get_workload("sdet")
        keys = {
            stream_fingerprint(spec, task, 5000) for task in spec.tasks
        }
        assert len(keys) == len(spec.tasks)

    def test_salt_defaults_to_the_code_version(self):
        spec = get_workload("espresso")
        task = spec.primary_task
        assert stream_fingerprint(spec, task, 100) == stream_fingerprint(
            spec, task, 100, salt=STREAM_CODE_VERSION
        )


class TestDescriptor:
    def test_carries_the_generating_spec(self):
        spec = get_workload("espresso")
        descriptor = stream_descriptor(spec, spec.primary_task, False)
        assert descriptor["workload"] == "espresso"
        assert descriptor["task"] == spec.primary_task
        assert "procedures" in descriptor and descriptor["procedures"]
        assert "data_procedures" not in descriptor

    def test_data_variant_extends_the_descriptor(self):
        spec = get_workload("xlisp")
        task = next(
            name for name in spec.tasks if spec.task(name).data_shapes
        )
        descriptor = stream_descriptor(spec, task, True)
        assert descriptor["mix"] == list(MIX_GEOMETRY)
        assert descriptor["data_seed"] == descriptor["seed"] ^ 0xDA7A


class TestHelpers:
    def test_compile_refs_adds_the_margin(self):
        assert compile_refs_for(1000) == 1000 + STREAM_MARGIN

    def test_payload_fingerprint_ignores_dict_order(self):
        assert fingerprint_payload({"a": 1, "b": 2}) == fingerprint_payload(
            {"b": 2, "a": 1}
        )
        assert fingerprint_payload({"a": 1}) != fingerprint_payload({"a": 2})
