"""Procedure-table and visit-template memoization (the PR's satellite).

Stream generation builds the same procedure tables and visit templates
for every trial of a sweep; both are pure functions of frozen inputs, so
they are ``lru_cache``'d.  These tests pin that the memo returns the
*same* objects (the speedup), that it cannot change what streams
generate (the correctness), and that the cached arrays are immutable.
"""

import numpy as np
import pytest

from repro.workloads import WORKLOAD_NAMES, get_workload
from repro.workloads.base import _procedures_for
from repro.workloads.locality import _template_for


class TestProcedureMemo:
    def test_repeated_calls_share_one_tuple(self):
        spec = get_workload("espresso")
        task = spec.task(spec.primary_task)
        assert task.procedures() is task.procedures()

    def test_spec_rebuild_shares_the_memo(self):
        a = get_workload("espresso")
        b = get_workload("espresso")
        task = a.primary_task
        assert a.task(task).procedures() is b.task(task).procedures()

    def test_distinct_shapes_share_nothing_same_shapes_share_all(self):
        """Tasks with identical shape rows (sdet's cloned scripts) share
        one table; distinct shapes get distinct tables."""
        spec = get_workload("sdet")
        tables = {
            id(spec.task(t).procedures()) for t in spec.tasks
        }
        shapes = {spec.task(t).shapes for t in spec.tasks}
        assert len(tables) == len(shapes)
        assert len(shapes) < len(spec.tasks)  # the memo actually shares

    def test_memoized_layout_matches_a_fresh_one(self):
        """The cached table equals what an uncached construction builds
        — cleared cache vs warm cache, field by field."""
        spec = get_workload("xlisp")
        task = spec.task(spec.primary_task)
        warm = task.procedures()
        _procedures_for.cache_clear()
        fresh = task.procedures()
        assert warm is not fresh  # really recomputed
        assert warm == fresh


class TestTemplateMemo:
    def test_templates_are_shared_and_read_only(self):
        spec = get_workload("espresso")
        procedure = spec.task(spec.primary_task).procedures()[0]
        first = _template_for(procedure)
        second = _template_for(procedure)
        assert first is second
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 0


class TestStreamsUnchanged:
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_memoized_streams_equal_cold_cache_streams(self, workload):
        """Clearing every memo between two builds yields bit-identical
        streams — memoization is invisible to the generated addresses."""
        spec = get_workload(workload)
        task = spec.task(spec.primary_task)
        warm = np.asarray(
            task.build_stream(spec.name).next_chunk(20_000)
        ).copy()
        _procedures_for.cache_clear()
        _template_for.cache_clear()
        cold = np.asarray(task.build_stream(spec.name).next_chunk(20_000))
        assert np.array_equal(warm, cold)
