"""Boundary snapshots: forking at any interval offset equals replaying.

The interval-sampling runner keys warm snapshots by reference offset —
one family per (workload, config, warm options, interval geometry).
The contract: measuring an interval by forking the boundary snapshot is
bit-identical to measuring it by replaying the whole warmup prefix
fresh, for *any* interval boundary (not just ones the plan selected),
and the incremental warming pass amortizes — later boundaries resume
from earlier ones instead of re-simulating from zero.
"""

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions
from repro.sampling import build_plan, profile_workload
from repro.sampling.runner import measure_interval
from repro.streams import StreamSession, StreamStore
from repro.streams.session import enabled
from repro.workloads.registry import get_workload

TOTAL_REFS = 81_920  # 10 intervals of 8192
INTERVAL_REFS = 8_192
SEED = 100


def _config():
    return TapewormConfig(
        cache=CacheConfig(size_bytes=16 * 1024), sampling=8, sampling_seed=SEED
    )


def _setup():
    spec = get_workload("espresso")
    options = RunOptions(total_refs=TOTAL_REFS, trial_seed=SEED)
    profile = profile_workload(spec, TOTAL_REFS, INTERVAL_REFS)
    plan = build_plan(profile, max_phases=3, per_phase=2, seed=SEED)
    return spec, options, plan


def _strip_warm(measurement):
    """Everything but warm accounting, which is topology-dependent
    (a fork warms nothing; a fresh replay warms the whole prefix)."""
    return {k: v for k, v in measurement.items() if k != "warm_refs"}


class TestForkEqualsReplay:
    @pytest.mark.parametrize("trial_seed", (SEED, SEED + 3))
    def test_arbitrary_boundary_fork_matches_prefix_replay(
        self, tmp_path, trial_seed
    ):
        spec, options, plan = _setup()
        # pick an interval the plan did NOT select: its boundary has no
        # special status, which is exactly the point
        unplanned = next(
            i
            for i in range(1, plan.n_intervals)
            if i not in {s.interval for s in plan.samples}
        )
        replayed = measure_interval(
            spec, _config(), options, plan, unplanned,
            trial_seed=trial_seed, warm_seed=SEED,
        )
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            forked = measure_interval(
                spec, _config(), options, plan, unplanned,
                trial_seed=trial_seed, warm_seed=SEED,
            )
        assert _strip_warm(forked) == _strip_warm(replayed)
        assert replayed["warm_refs"] >= plan.start_of(unplanned)

    def test_every_planned_boundary_forks_identically(self, tmp_path):
        spec, options, plan = _setup()
        cold = [
            measure_interval(
                spec, _config(), options, plan, s.interval,
                trial_seed=SEED, warm_seed=SEED,
            )
            for s in plan.samples
        ]
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            warm = [
                measure_interval(
                    spec, _config(), options, plan, s.interval,
                    trial_seed=SEED, warm_seed=SEED,
                )
                for s in plan.samples
            ]
        assert [_strip_warm(m) for m in warm] == [
            _strip_warm(m) for m in cold
        ]

    def test_incremental_warming_amortizes(self, tmp_path):
        """The second pass over the same boundaries warms nothing: every
        boundary snapshot already exists and is forked, not rebuilt."""
        spec, options, plan = _setup()
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))) as session:
            first = [
                measure_interval(
                    spec, _config(), options, plan, s.interval,
                    trial_seed=SEED, warm_seed=SEED,
                )
                for s in plan.samples
            ]
            forks_before = session.snapshots.forks
            second = [
                measure_interval(
                    spec, _config(), options, plan, s.interval,
                    trial_seed=SEED + 1, warm_seed=SEED,
                )
                for s in plan.samples
            ]
            later_boundaries = sum(
                1 for s in plan.samples if s.interval > 0
            )
            assert session.snapshots.forks - forks_before >= later_boundaries
        assert sum(m["warm_refs"] for m in second) == 0
        assert sum(m["warm_refs"] for m in first) > 0

    def test_forking_does_not_mutate_the_snapshot(self, tmp_path):
        spec, options, plan = _setup()
        interval = plan.samples[-1].interval
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            first = measure_interval(
                spec, _config(), options, plan, interval,
                trial_seed=SEED, warm_seed=SEED,
            )
            second = measure_interval(
                spec, _config(), options, plan, interval,
                trial_seed=SEED, warm_seed=SEED,
            )
        assert _strip_warm(first) == _strip_warm(second)
