"""Warm-state snapshots: forked trials equal fully replayed trials."""

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import ConfigError
from repro.faults.plan import FaultPlan
from repro.faults.session import enabled as faults_enabled
from repro.harness.runner import (
    RunOptions,
    run_trap_driven,
    run_warm_trials,
)
from repro.streams import StreamSession, StreamStore, WarmupPlan
from repro.streams.session import enabled

_REFS = 24_000
_WARM = WarmupPlan(warmup_refs=16_000, warmup_seed=0)


def _config():
    return TapewormConfig(cache=CacheConfig(size_bytes=4096))


def _options(seed):
    return RunOptions(total_refs=_REFS, trial_seed=seed)


def _signature(report):
    return (
        dict(report.stats.misses),
        report.traps,
        report.page_faults,
        report.ticks,
        dict(report.refs),
        report.slowdown,
    )


class TestForkEqualsReplay:
    @pytest.mark.parametrize("seed", (5, 9))
    def test_forked_trial_matches_full_replay(self, tmp_path, seed):
        from repro.workloads import get_workload

        spec = get_workload("espresso")
        # full replay: warmup prefix re-simulated, no session
        replayed = run_trap_driven(spec, _config(), _options(seed), warmup=_WARM)
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))) as session:
            forked = run_trap_driven(
                spec, _config(), _options(seed), warmup=_WARM
            )
            assert session.snapshots.creates == 1
            assert session.snapshots.forks == 1
        assert _signature(forked) == _signature(replayed)

    def test_one_snapshot_serves_many_trials(self, tmp_path):
        from repro.workloads import get_workload

        spec = get_workload("espresso")
        cold = run_warm_trials(
            spec, _config(), _options(0), _WARM, n_trials=3, base_seed=40
        )
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))) as session:
            warm = run_warm_trials(
                spec, _config(), _options(0), _WARM, n_trials=3, base_seed=40
            )
            assert session.snapshots.creates == 1
            assert session.snapshots.forks == 3
        assert [_signature(r) for r in warm] == [_signature(r) for r in cold]

    def test_trials_still_vary_across_seeds(self, tmp_path):
        """Sharing a warmed prefix must not collapse the trial-to-trial
        variance the paper's Table 7 measures."""
        from repro.workloads import get_workload

        spec = get_workload("espresso")
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            reports = run_warm_trials(
                spec, _config(), _options(0), _WARM, n_trials=4, base_seed=7
            )
        misses = [r.stats.total_misses for r in reports]
        assert len(set(misses)) > 1, "forked trials are identical"

    def test_fork_does_not_mutate_the_snapshot(self, tmp_path):
        """Back-to-back identical trials agree — the second fork sees
        pristine warmed state, not the first trial's leftovers."""
        from repro.workloads import get_workload

        spec = get_workload("espresso")
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            first = run_trap_driven(spec, _config(), _options(3), warmup=_WARM)
            second = run_trap_driven(spec, _config(), _options(3), warmup=_WARM)
        assert _signature(first) == _signature(second)


class TestBypass:
    def test_fault_sessions_bypass_snapshot_sharing(self, tmp_path):
        """Injected faults mutate warmed state; a shared snapshot would
        leak one trial's damage into the next, so the runner replays the
        prefix fresh and counts the bypass."""
        from repro.workloads import get_workload

        spec = get_workload("espresso")
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))) as session:
            with faults_enabled(FaultPlan()):
                run_trap_driven(spec, _config(), _options(1), warmup=_WARM)
                run_trap_driven(spec, _config(), _options(2), warmup=_WARM)
            assert session.snapshots.creates == 0
            assert session.snapshots.forks == 0
            assert session.snapshots.bypassed == 2

    def test_no_session_means_no_snapshots(self):
        from repro.workloads import get_workload

        spec = get_workload("espresso")
        report = run_trap_driven(spec, _config(), _options(1), warmup=_WARM)
        assert report.stats.total_misses > 0


class TestValidation:
    def test_warmup_must_fit_inside_the_run(self):
        from repro.workloads import get_workload

        spec = get_workload("espresso")
        with pytest.raises(ConfigError, match="warmup_refs"):
            run_trap_driven(
                spec,
                _config(),
                RunOptions(total_refs=1000, trial_seed=0),
                warmup=WarmupPlan(warmup_refs=1000),
            )

    def test_warmup_refs_must_be_positive(self):
        with pytest.raises(ConfigError):
            WarmupPlan(warmup_refs=0)
