"""The blob store under normal use and under damage."""

import json

import numpy as np
import pytest

from repro.errors import StreamStoreError
from repro.streams import StreamStore
from repro.streams.store import blob_crc


def _array(n=1000, seed=7):
    return np.random.default_rng(seed).integers(0, 1 << 30, n, dtype=np.int64)


def _seed_store(directory, keys=("k1", "k2")):
    store = StreamStore(directory)
    for i, key in enumerate(keys):
        store.put(key, _array(seed=i), descriptor={"origin": key})
    return store


class TestRoundTrip:
    def test_put_get_is_bit_identical(self, tmp_path):
        store = StreamStore(tmp_path)
        original = _array()
        store.put("key", original)
        mapped = StreamStore(tmp_path).get("key")
        assert mapped is not None
        assert np.array_equal(np.asarray(mapped), original)

    def test_mapped_blob_is_read_only(self, tmp_path):
        store = _seed_store(tmp_path)
        mapped = store.get("k1")
        with pytest.raises(ValueError):
            mapped[0] = 1

    def test_unknown_key_misses(self, tmp_path):
        store = StreamStore(tmp_path)
        assert store.get("nope") is None
        assert store.misses == 1

    def test_repeat_get_memoizes(self, tmp_path):
        store = _seed_store(tmp_path)
        first = store.get("k1")
        second = store.get("k1")
        assert first is second

    def test_disabled_store_misses_and_drops_puts(self, tmp_path):
        _seed_store(tmp_path)
        bypassed = StreamStore(tmp_path, enabled=False)
        assert bypassed.get("k1") is None
        assert bypassed.put("k3", _array()) is None
        assert not bypassed.contains("k3")
        assert StreamStore(tmp_path).get("k3") is None

    def test_put_rejects_wrong_shape_and_dtype(self, tmp_path):
        store = StreamStore(tmp_path)
        with pytest.raises(StreamStoreError):
            store.put("bad", _array().astype(np.float64))
        with pytest.raises(StreamStoreError):
            store.put("bad", _array().reshape(10, 100))


class TestCorruption:
    def test_flipped_byte_is_quarantined_not_served(self, tmp_path):
        _seed_store(tmp_path)
        blob = tmp_path / "k1.npy"
        data = bytearray(blob.read_bytes())
        data[len(data) // 2] ^= 0xFF
        blob.write_bytes(bytes(data))
        fresh = StreamStore(tmp_path)
        assert fresh.get("k1") is None  # never serve damaged replay data
        assert fresh.corrupt == 1
        assert (tmp_path / "quarantine" / "k1.npy").exists()
        assert fresh.get("k2") is not None  # neighbours unaffected

    def test_truncated_blob_is_quarantined(self, tmp_path):
        _seed_store(tmp_path)
        blob = tmp_path / "k1.npy"
        blob.write_bytes(blob.read_bytes()[:100])
        fresh = StreamStore(tmp_path)
        assert fresh.get("k1") is None
        assert fresh.corrupt == 1

    def test_garbage_sidecar_is_quarantined(self, tmp_path):
        _seed_store(tmp_path)
        (tmp_path / "k1.json").write_text("{not json")
        fresh = StreamStore(tmp_path)
        assert fresh.get("k1") is None
        assert fresh.corrupt == 1

    def test_blob_without_sidecar_is_a_plain_miss(self, tmp_path):
        """An interrupted put (blob committed, sidecar not) must read as
        a miss — the sidecar is the commit point — and not count as
        corruption."""
        _seed_store(tmp_path)
        (tmp_path / "k1.json").unlink()
        fresh = StreamStore(tmp_path)
        assert fresh.get("k1") is None
        assert fresh.corrupt == 0
        assert not fresh.contains("k1")

    def test_recompile_after_quarantine_heals_the_store(self, tmp_path):
        store = _seed_store(tmp_path)
        (tmp_path / "k1.npy").write_bytes(b"garbage")
        fresh = StreamStore(tmp_path)
        assert fresh.get("k1") is None
        replacement = _array(seed=99)
        fresh.put("k1", replacement)
        assert np.array_equal(
            np.asarray(StreamStore(tmp_path).get("k1")), replacement
        )


class TestStats:
    def test_inventory_counts_committed_blobs(self, tmp_path):
        store = _seed_store(tmp_path)
        stats = store.stats()
        assert stats["blobs"] == 2
        assert stats["compiled_refs"] == 2000
        assert stats["blob_bytes"] > 0
        assert stats["session"]["puts"] == 2

    def test_quarantined_blobs_are_counted(self, tmp_path):
        _seed_store(tmp_path)
        (tmp_path / "k1.npy").write_bytes(b"garbage")
        fresh = StreamStore(tmp_path)
        fresh.get("k1")
        assert fresh.stats()["quarantined"] == 1


class TestClear:
    def test_clear_drops_everything(self, tmp_path):
        store = _seed_store(tmp_path)
        (tmp_path / "k1.npy").write_bytes(b"garbage")
        fresh = StreamStore(tmp_path)
        fresh.get("k1")  # quarantine it
        assert fresh.clear() >= 1
        assert fresh.stats()["blobs"] == 0
        assert not (tmp_path / "quarantine").exists()

    def test_clear_of_missing_directory_is_a_noop(self, tmp_path):
        assert StreamStore(tmp_path / "absent").clear() == 0

    def test_clear_refuses_symlinked_blobs(self, tmp_path):
        store_dir = tmp_path / "store"
        _seed_store(store_dir)
        victim = tmp_path / "precious.npy"
        victim.write_bytes(b"do not delete")
        (store_dir / "planted.npy").symlink_to(victim)
        with pytest.raises(StreamStoreError, match="refusing to clear"):
            StreamStore(store_dir).clear()
        assert victim.exists()
