"""The acceptance pin: paper artifacts are byte-identical, store on/off.

Table 7 (multi-trial variance, the snapshot/farm fan-out path) and
Figure 2 (a cache-size sweep crossing the trap- and trace-driven
drivers) are rendered three ways — no session, cold store, warm store —
and compared as strings.  Any divergence anywhere in the stream,
snapshot, or memoization machinery shows up here as a diff.
"""

import pytest

from repro.experiments.figure2 import render as render_figure2
from repro.experiments.figure2 import run_figure2
from repro.experiments.table7 import render as render_table7
from repro.experiments.table7 import run_table7
from repro.streams import StreamSession, StreamStore
from repro.streams.session import enabled

_WORKLOADS = ("espresso", "xlisp")


class TestTable7:
    def test_rendered_table_identical_store_on_and_off(self, tmp_path):
        baseline = render_table7(
            run_table7("tiny", n_trials=3, workloads=_WORKLOADS)
        )
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            cold = render_table7(
                run_table7("tiny", n_trials=3, workloads=_WORKLOADS)
            )
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))) as session:
            warm = render_table7(
                run_table7("tiny", n_trials=3, workloads=_WORKLOADS)
            )
            assert session.store.hits > 0  # really replayed from disk
            assert session.compiles == 0
        assert cold == baseline
        assert warm == baseline


class TestFigure2:
    def test_rendered_figure_identical_store_on_and_off(self, tmp_path):
        baseline = render_figure2(
            run_figure2("tiny", sizes_kb=(4, 16, 64))
        )
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))):
            cold = render_figure2(run_figure2("tiny", sizes_kb=(4, 16, 64)))
        with enabled(StreamSession(store=StreamStore(tmp_path / "s"))) as session:
            warm = render_figure2(run_figure2("tiny", sizes_kb=(4, 16, 64)))
            assert session.store.hits > 0
        assert cold == baseline
        assert warm == baseline
