"""Stream delivery to workers: shared memory, attach, worker sessions."""

import numpy as np
import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.streams import (
    ShmArena,
    StreamSession,
    StreamStore,
    StreamTransport,
    transported_execute,
)
from repro.streams.session import enabled
from repro.streams.transport import attach_segments
from repro.workloads import get_workload

_REFS = 20_000


def _shm_available() -> bool:
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=16)
        probe.close()
        probe.unlink()
        return True
    except (ImportError, OSError):
        return False


needs_shm = pytest.mark.skipif(
    not _shm_available(), reason="POSIX shared memory unavailable"
)


class TestArena:
    @needs_shm
    def test_publish_attach_roundtrip_is_bit_identical(self):
        arena = ShmArena()
        original = np.arange(5000, dtype=np.int64) * 3
        try:
            segment = arena.publish("some-key", original)
            assert segment is not None
            attachments, handles = attach_segments((segment,))
            try:
                assert np.array_equal(attachments["some-key"], original)
                with pytest.raises(ValueError):
                    attachments["some-key"][0] = 1  # read-only view
            finally:
                for shm in handles:
                    shm.close()
        finally:
            arena.close()

    @needs_shm
    def test_close_unlinks_every_segment(self):
        arena = ShmArena()
        segment = arena.publish("k", np.arange(100, dtype=np.int64))
        arena.close()
        attachments, handles = attach_segments((segment,))
        assert attachments == {} and handles == []  # gone, not fatal

    def test_missing_segment_degrades_to_local_compile(self):
        from repro.streams.transport import ShmSegment

        attachments, handles = attach_segments(
            (ShmSegment(key="k", shm_name="nonexistent-seg", refs=10),)
        )
        assert attachments == {} and handles == []


class TestSessionTransport:
    def test_store_backed_transport_carries_no_segments(self, tmp_path):
        session = StreamSession(store=StreamStore(tmp_path))
        spec = get_workload("espresso")
        session.precompile(spec, _REFS)
        transport = session.transport()
        assert transport.store_enabled
        assert transport.shm_segments == ()
        assert transport.store_dir == str(tmp_path)

    @needs_shm
    def test_disabled_store_publishes_segments_instead(self, tmp_path):
        session = StreamSession(
            store=StreamStore(tmp_path, enabled=False)
        )
        spec = get_workload("espresso")
        session.precompile(spec, _REFS)
        try:
            transport = session.transport()
            assert not transport.store_enabled
            assert len(transport.shm_segments) == len(spec.tasks)
            # repeated calls don't republish the same keys
            again = session.transport()
            assert len(again.shm_segments) == len(transport.shm_segments)
        finally:
            session.close_transport()


class TestTransportedExecute:
    def test_worker_entry_point_matches_direct_execution(self, tmp_path):
        """The in-worker session path returns the same value the serial
        path computes (exercised in-process; the farm pool tests cover
        real worker processes)."""
        from repro.farm.registry import timed_execute

        params = {"workload": "espresso", "total_refs": _REFS}
        direct, _ = timed_execute("table7.measure", dict(params), 3)
        # prime a store so the worker maps instead of compiling
        session = StreamSession(store=StreamStore(tmp_path))
        session.precompile(get_workload("espresso"), _REFS)
        transport = StreamTransport(store_dir=str(tmp_path))
        transported, _ = transported_execute(
            transport, "table7.measure", dict(params), 3
        )
        assert transported == direct

    def test_worker_session_is_torn_down_after_the_job(self, tmp_path):
        from repro.streams.session import active

        transport = StreamTransport(store_dir=str(tmp_path))
        transported_execute(
            transport,
            "table7.measure",
            {"workload": "espresso", "total_refs": _REFS},
            1,
        )
        assert active() is None


class TestFarmIntegration:
    def test_farm_with_transport_matches_serial_results(self, tmp_path):
        """End to end: a multi-worker farm shipping a store-backed
        transport returns bit-identical trial values."""
        from repro.farm import Farm, FarmConfig, Job

        jobs = [
            Job(
                measure="table7.measure",
                params={"workload": "espresso", "total_refs": _REFS},
                seed=seed,
            )
            for seed in range(3)
        ]
        serial = Farm(
            FarmConfig(max_workers=1, use_cache=False)
        ).run_jobs(jobs)
        with enabled(StreamSession(store=StreamStore(tmp_path))) as session:
            session.precompile(get_workload("espresso"), _REFS)
            farmed = Farm(
                FarmConfig(
                    max_workers=2,
                    use_cache=False,
                    stream_transport=session.transport(),
                )
            ).run_jobs(jobs)
        assert farmed == serial
