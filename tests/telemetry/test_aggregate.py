"""The merge algebra for worker metrics snapshots.

The farm folds every worker envelope into the master registry, in
whatever order results happen to land — so the merge must not care
about grouping or order.  Hypothesis pins that algebra: for counters
and histograms, ``merge_snapshots`` is associative and commutative
(gauges are deliberately excluded — last-write-wins resolves ties in
favour of the right operand, which is the documented, deterministic
tie-break, not a commutative one).

Values are integers so float addition stays exact; the properties are
about the algebra, not about rounding.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.telemetry.aggregate import (
    MAX_WORKER_SERIES,
    SNAPSHOT_VERSION,
    export_metrics,
    fold_into,
    merge_snapshots,
    split_key,
)
from repro.telemetry.registry import MetricsRegistry

# a small, fixed universe of series names keeps collisions (the
# interesting case) frequent; the name prefix decides the kind
_COUNTER_KEYS = ("jobs.done", "work.units{component=user}", "traps.seen")
_HISTOGRAM_KEYS = ("latency.secs", "chunk.secs{kind=dm}")
_BOUNDS = (1.0, 5.0, 25.0)


def _counter_entry(value: int) -> dict:
    return {"kind": "counter", "value": value}


def _histogram_entry(observations: list[int]) -> dict:
    counts = [0] * (len(_BOUNDS) + 1)
    for value in observations:
        for i, bound in enumerate(_BOUNDS):
            if value <= bound:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    return {
        "kind": "histogram",
        "bounds": list(_BOUNDS),
        "counts": counts,
        "count": len(observations),
        "sum": sum(observations),
        "min": min(observations) if observations else 0.0,
        "max": max(observations) if observations else 0.0,
    }


_counter_series = st.dictionaries(
    st.sampled_from(_COUNTER_KEYS),
    st.integers(min_value=0, max_value=10**6).map(_counter_entry),
    max_size=len(_COUNTER_KEYS),
)
_histogram_series = st.dictionaries(
    st.sampled_from(_HISTOGRAM_KEYS),
    st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=8
    ).map(_histogram_entry),
    max_size=len(_HISTOGRAM_KEYS),
)


@st.composite
def envelopes(draw):
    series = {**draw(_counter_series), **draw(_histogram_series)}
    return {"v": SNAPSHOT_VERSION, "series": series}


class TestMergeAlgebra:
    @settings(max_examples=200)
    @given(a=envelopes(), b=envelopes(), c=envelopes())
    def test_associative(self, a, b, c):
        left = merge_snapshots(merge_snapshots(a, b), c)
        right = merge_snapshots(a, merge_snapshots(b, c))
        assert left == right

    @settings(max_examples=200)
    @given(a=envelopes(), b=envelopes())
    def test_commutative_for_counters_and_histograms(self, a, b):
        assert merge_snapshots(a, b) == merge_snapshots(b, a)

    @settings(max_examples=100)
    @given(a=envelopes())
    def test_empty_envelope_is_identity(self, a):
        empty = {"v": SNAPSHOT_VERSION, "series": {}}
        assert merge_snapshots(a, empty) == merge_snapshots(empty, a)
        assert merge_snapshots(a, empty)["series"] == a["series"]

    @settings(max_examples=100)
    @given(a=envelopes(), b=envelopes())
    def test_merge_is_pure(self, a, b):
        import copy

        a_before, b_before = copy.deepcopy(a), copy.deepcopy(b)
        merge_snapshots(a, b)
        assert a == a_before and b == b_before


class TestGaugeMerge:
    def _gauge(self, value, when):
        return {
            "v": SNAPSHOT_VERSION,
            "series": {
                "memory.used": {
                    "kind": "gauge", "value": value, "updated_unix": when,
                }
            },
        }

    def test_newer_write_wins(self):
        merged = merge_snapshots(self._gauge(1, 100.0), self._gauge(2, 200.0))
        assert merged["series"]["memory.used"]["value"] == 2
        merged = merge_snapshots(self._gauge(2, 200.0), self._gauge(1, 100.0))
        assert merged["series"]["memory.used"]["value"] == 2

    def test_tie_resolved_toward_right_operand(self):
        merged = merge_snapshots(self._gauge(1, 100.0), self._gauge(2, 100.0))
        assert merged["series"]["memory.used"]["value"] == 2


class TestMergeErrors:
    def test_kind_mismatch_raises(self):
        a = {"v": 1, "series": {"x.y": {"kind": "counter", "value": 1}}}
        b = {
            "v": 1,
            "series": {
                "x.y": {"kind": "gauge", "value": 1, "updated_unix": 0.0}
            },
        }
        with pytest.raises(TelemetryError):
            merge_snapshots(a, b)

    def test_histogram_bounds_mismatch_raises(self):
        a = {"v": 1, "series": {"h.s": _histogram_entry([1])}}
        b = {"v": 1, "series": {"h.s": _histogram_entry([1])}}
        b["series"]["h.s"]["bounds"] = [1.0, 2.0, 3.0]
        with pytest.raises(TelemetryError):
            merge_snapshots(a, b)

    def test_unknown_kind_raises(self):
        a = {"v": 1, "series": {"x.y": {"kind": "sketch", "value": 1}}}
        with pytest.raises(TelemetryError):
            merge_snapshots(a, a)

    def test_wrong_version_raises(self):
        with pytest.raises(TelemetryError):
            merge_snapshots({"v": 99, "series": {}}, {"v": 1, "series": {}})

    def test_missing_series_raises(self):
        with pytest.raises(TelemetryError):
            merge_snapshots({"v": 1}, {"v": 1, "series": {}})


class TestSplitKey:
    def test_plain_name(self):
        assert split_key("machine.cpu.refs") == ("machine.cpu.refs", {})

    def test_labeled_name(self):
        assert split_key("tapeworm.misses{component=kernel,kind=read}") == (
            "tapeworm.misses",
            {"component": "kernel", "kind": "read"},
        )

    @pytest.mark.parametrize("key", ["a{b=c", "a{bc}"])
    def test_malformed_key_raises(self, key):
        with pytest.raises(TelemetryError):
            split_key(key)


class TestExportFold:
    def test_fold_matches_a_single_shared_registry(self):
        """Two worker registries folded == one registry fed everything."""
        shared = MetricsRegistry()
        worker_a = MetricsRegistry()
        worker_b = MetricsRegistry()
        for registry, values in (
            (worker_a, (0.5, 2.0)),
            (worker_b, (7.0, 0.1, 30.0)),
        ):
            for value in values:
                registry.counter("jobs.done").inc()
                registry.histogram(
                    "latency.secs", bounds=_BOUNDS
                ).observe(value)
                shared.counter("jobs.done").inc()
                shared.histogram("latency.secs", bounds=_BOUNDS).observe(value)

        master = MetricsRegistry()
        for worker in (worker_a, worker_b):
            fold_into(master, export_metrics(worker), prefix="farm.worker")

        got = master.snapshot()
        want = shared.snapshot()
        assert got["farm.worker.jobs.done"] == want["jobs.done"]
        assert got["farm.worker.latency.secs"] == want["latency.secs"]

    def test_fold_preserves_labels(self):
        worker = MetricsRegistry()
        worker.counter("traps.seen", kind="ecc_error").inc(3)
        master = MetricsRegistry()
        merged, dropped = fold_into(master, export_metrics(worker))
        assert (merged, dropped) == (1, 0)
        assert (
            master.snapshot()["farm.worker.traps.seen{kind=ecc_error}"] == 3
        )

    def test_fold_gauge_respects_timestamps(self):
        stale = {
            "v": 1,
            "series": {
                "memory.used": {
                    "kind": "gauge", "value": 5, "updated_unix": 50.0,
                }
            },
        }
        master = MetricsRegistry()
        fold_into(master, stale)
        gauge = master.gauge("farm.worker.memory.used")
        assert gauge.value == 5 and gauge.updated_unix == 50.0
        older = {
            "v": 1,
            "series": {
                "memory.used": {
                    "kind": "gauge", "value": 1, "updated_unix": 10.0,
                }
            },
        }
        fold_into(master, older)
        assert gauge.value == 5  # the stale write lost

    def test_cardinality_cap_is_deterministic_and_counted(self):
        worker = MetricsRegistry()
        for i in range(6):
            worker.counter(f"series_{i:02d}.value").inc(i)
        master = MetricsRegistry()
        merged, dropped = fold_into(
            master, export_metrics(worker), max_series=4
        )
        assert (merged, dropped) == (4, 2)
        kept = [key for key in master.snapshot() if "series_" in key]
        # sorted key order: the *first* four survive, every time
        assert kept == [
            f"farm.worker.series_{i:02d}.value" for i in range(4)
        ]
        assert MAX_WORKER_SERIES >= 4  # default cap is far above the test's

    def test_fold_rejects_kind_conflict_with_live_registry(self):
        master = MetricsRegistry()
        master.counter("farm.worker.memory.used")
        snapshot = {
            "v": 1,
            "series": {
                "memory.used": {
                    "kind": "gauge", "value": 5, "updated_unix": 1.0,
                }
            },
        }
        with pytest.raises(TelemetryError):
            fold_into(master, snapshot)
