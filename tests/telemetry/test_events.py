"""The bounded event ring and its Chrome trace_event export."""

from __future__ import annotations

import json

import pytest

from repro._types import Component
from repro.errors import TelemetryError
from repro.machine.traps import TrapFrame, TrapKind
from repro.telemetry.events import (
    CYCLES_PER_US,
    FARM_PID,
    MACHINE_PID,
    EventTracer,
    TraceEvent,
)


def _event(i: int) -> TraceEvent:
    return TraceEvent(
        kind=f"e{i}", category="test", lane="lane", pid=MACHINE_PID, ts_us=float(i)
    )


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(TelemetryError):
            EventTracer(0)

    def test_under_capacity_keeps_everything(self):
        tracer = EventTracer(capacity=8)
        for i in range(5):
            tracer.record(_event(i))
        assert len(tracer) == 5
        assert tracer.recorded == 5
        assert tracer.dropped == 0
        assert [e.kind for e in tracer.events()] == [f"e{i}" for i in range(5)]

    def test_overflow_drops_oldest_and_counts(self):
        tracer = EventTracer(capacity=4)
        for i in range(10):
            tracer.record(_event(i))
        assert len(tracer) == 4
        assert tracer.recorded == 10
        assert tracer.dropped == 6
        # survivors are the newest four, oldest first
        assert [e.kind for e in tracer.events()] == ["e6", "e7", "e8", "e9"]

    def test_exactly_full_is_not_a_drop(self):
        tracer = EventTracer(capacity=3)
        for i in range(3):
            tracer.record(_event(i))
        assert tracer.dropped == 0
        assert [e.kind for e in tracer.events()] == ["e0", "e1", "e2"]


class TestEmitters:
    def test_trap_event_converts_cycles_to_microseconds(self):
        tracer = EventTracer()
        frame = TrapFrame(
            kind=TrapKind.ECC_ERROR,
            tid=3,
            component=Component.USER,
            va=0x1000,
            pa=0x2000,
            cycle=250,
        )
        tracer.trap(frame, handler_cycles=246)
        (event,) = tracer.events()
        assert event.kind == "ecc_error"
        assert event.category == "trap"
        assert event.lane == "user"
        assert event.pid == MACHINE_PID
        assert event.ts_us == pytest.approx(250 / CYCLES_PER_US)
        assert event.dur_us == pytest.approx(246 / CYCLES_PER_US)
        assert event.args["handler_cycles"] == 246

    def test_page_fault_and_clock_events(self):
        tracer = EventTracer()
        tracer.page_fault(100, Component.KERNEL, tid=0, vpn=7)
        tracer.clock_ticks(200, ticks=2)
        fault, tick = tracer.events()
        assert (fault.kind, fault.lane) == ("page_fault", "kernel")
        assert fault.args["vpn"] == 7
        assert (tick.kind, tick.category, tick.args["ticks"]) == (
            "clock_tick",
            "clock",
            2,
        )

    def test_farm_job_uses_wall_clock_microseconds(self):
        tracer = EventTracer()
        tracer.farm_job("job", ts_secs=0.5, dur_secs=0.25, measure="m", seed=1)
        (event,) = tracer.events()
        assert event.pid == FARM_PID
        assert event.ts_us == pytest.approx(500_000.0)
        assert event.dur_us == pytest.approx(250_000.0)
        assert event.args == {"measure": "m", "seed": 1}


class TestChromeTrace:
    def _tracer(self) -> EventTracer:
        tracer = EventTracer(capacity=16)
        frame = TrapFrame(
            kind=TrapKind.PAGE_INVALID,
            tid=1,
            component=Component.USER,
            va=0,
            pa=0,
            cycle=500,
        )
        tracer.trap(frame, handler_cycles=246)
        tracer.clock_ticks(1000, ticks=1)
        tracer.farm_job("cache_hit", ts_secs=0.1)
        return tracer

    def test_structure_and_metadata(self):
        trace = self._tracer().chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit", "otherData"}
        events = trace["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        names = {(e["name"], e["pid"]) for e in meta}
        assert ("process_name", MACHINE_PID) in names
        assert ("process_name", FARM_PID) in names
        # one thread_name per (pid, lane) actually used
        lanes = {
            (e["pid"], e["args"]["name"])
            for e in meta
            if e["name"] == "thread_name"
        }
        assert lanes == {
            (MACHINE_PID, "user"),
            (MACHINE_PID, "clock"),
            (FARM_PID, "jobs"),
        }

    def test_phases_durations_and_json_round_trip(self):
        trace = self._tracer().chrome_trace()
        payload = json.loads(json.dumps(trace))
        real = [e for e in payload["traceEvents"] if e["ph"] != "M"]
        assert len(real) == 3
        for event in real:
            assert {"name", "cat", "pid", "tid", "ts", "ph"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] > 0
            else:
                assert event["ph"] == "i"
                assert event["s"] == "t"
        assert payload["otherData"] == {
            "recorded": 3,
            "dropped": 0,
            "dropped_events": 0,
            "capacity": 16,
        }

    def test_write_chrome_trace(self, tmp_path):
        path = self._tracer().write_chrome_trace(tmp_path / "sub" / "trace.json")
        loaded = json.loads(path.read_text())
        assert loaded["displayTimeUnit"] == "ms"
        assert loaded["otherData"]["recorded"] == 3
