"""Run manifests: hashing, writing, reading, schema validation."""

from __future__ import annotations

import json

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import TelemetryError
from repro.farm.jobs import CODE_VERSION
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    git_version,
    read_manifests,
    validate_record,
    write_manifest,
)


def _manifest(**overrides) -> RunManifest:
    fields = dict(
        kind="run",
        name="espresso",
        configuration="16K direct-mapped",
        config_hash=config_hash({"cache": "16K"}),
        seed=7,
        wall_clock_secs=1.25,
        metrics={"machine.cpu.refs{component=user}": 100},
        results={"misses": 42},
    )
    fields.update(overrides)
    return RunManifest(**fields)


class TestConfigHash:
    def test_stable_and_short(self):
        h = config_hash({"a": 1, "b": [2, 3]})
        assert h == config_hash({"b": [2, 3], "a": 1})
        assert len(h) == 16
        int(h, 16)  # hex

    def test_sensitive_to_content(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_accepts_dataclass_configs(self):
        one = config_hash(TapewormConfig(cache=CacheConfig(size_bytes=4096)))
        two = config_hash(TapewormConfig(cache=CacheConfig(size_bytes=4096)))
        other = config_hash(TapewormConfig(cache=CacheConfig(size_bytes=8192)))
        assert one == two
        assert one != other


class TestRecord:
    def test_record_is_stamped_and_valid(self):
        record = _manifest().record()
        assert record["schema"] == MANIFEST_SCHEMA_VERSION
        assert record["code_version"] == CODE_VERSION
        assert record["git_version"] == git_version()
        assert record["created_unix"] > 0
        assert validate_record(record) == []

    def test_record_is_json_encodable(self):
        json.dumps(_manifest().record())


class TestWriteRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "logs" / "manifests.jsonl"
        write_manifest(_manifest(seed=1), path)
        write_manifest(_manifest(seed=2), path)
        records = read_manifests(path)
        assert [r["seed"] for r in records] == [1, 2]
        assert all(validate_record(r) == [] for r in records)

    def test_missing_log_reads_empty(self, tmp_path):
        assert read_manifests(tmp_path / "nope.jsonl") == []

    def test_torn_line_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "manifests.jsonl"
        write_manifest(_manifest(seed=1), path)
        with path.open("a") as handle:
            handle.write('{"torn": ')  # interrupted write, no newline
        write_manifest(_manifest(seed=2), path)
        # the torn fragment glues onto the next record's JSON, so at
        # minimum the intact first record survives and nothing raises
        records = read_manifests(path)
        assert records[0]["seed"] == 1

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "manifests.jsonl"
        write_manifest(_manifest(), path)
        with path.open("a") as handle:
            handle.write("\n\n")
        assert len(read_manifests(path)) == 1

    def test_invalid_record_refused(self, tmp_path):
        with pytest.raises(TelemetryError):
            write_manifest({"kind": "run"}, tmp_path / "manifests.jsonl")
        assert not (tmp_path / "manifests.jsonl").exists()


class TestValidateRecord:
    def test_missing_field_reported(self):
        record = _manifest().record()
        del record["seed"]
        problems = validate_record(record)
        assert any("seed" in p for p in problems)

    def test_wrong_type_reported(self):
        record = _manifest().record()
        record["wall_clock_secs"] = "fast"
        assert any("wall_clock_secs" in p for p in validate_record(record))

    def test_bool_is_not_an_int(self):
        record = _manifest().record()
        record["seed"] = True
        assert any("seed" in p for p in validate_record(record))

    def test_newer_schema_rejected(self):
        record = _manifest().record()
        record["schema"] = MANIFEST_SCHEMA_VERSION + 1
        assert any("newer" in p for p in validate_record(record))


def _estimate(**overrides) -> dict:
    entry = dict(
        value=1234.5, ci_low=1100.0, ci_high=1369.0,
        method="stratified-t", exact=False,
    )
    entry.update(overrides)
    return entry


class TestSchemaV2Estimates:
    """The v2 ``estimates`` block: optional, but strictly shaped."""

    def test_schema_version_is_two(self):
        assert MANIFEST_SCHEMA_VERSION == 2

    def test_v1_record_without_estimates_still_valid(self):
        record = _manifest().record()
        assert "estimates" not in record  # absent unless provided
        assert validate_record(record) == []

    def test_estimates_block_round_trips(self, tmp_path):
        manifest = _manifest(
            estimates={"espresso.misses": _estimate()}
        )
        record = manifest.record()
        assert validate_record(record) == []
        path = tmp_path / "manifests.jsonl"
        write_manifest(manifest, path)
        stored = read_manifests(path)[0]
        assert stored["estimates"]["espresso.misses"]["ci_low"] == 1100.0
        assert stored["estimates"]["espresso.misses"]["exact"] is False

    def test_exact_entries_allowed(self):
        record = _manifest(
            estimates={"misses": _estimate(ci_low=1234.5, ci_high=1234.5,
                                           method="exact", exact=True)}
        ).record()
        assert validate_record(record) == []

    def test_non_dict_estimates_rejected(self):
        record = _manifest().record()
        record["estimates"] = "not-a-dict"
        assert any("estimates" in p for p in validate_record(record))

    def test_non_dict_entry_rejected(self):
        record = _manifest(estimates={"misses": _estimate()}).record()
        record["estimates"]["misses"] = [1, 2, 3]
        assert any("misses" in p for p in validate_record(record))

    def test_missing_entry_field_rejected(self):
        entry = _estimate()
        del entry["ci_high"]
        record = _manifest(estimates={"misses": entry}).record()
        assert any("ci_high" in p for p in validate_record(record))

    def test_entry_field_types_checked(self):
        record = _manifest(
            estimates={"misses": _estimate(value="big")}
        ).record()
        assert any("value" in p for p in validate_record(record))

    def test_exact_must_be_bool_not_int(self):
        record = _manifest(
            estimates={"misses": _estimate(exact=1)}
        ).record()
        assert any("exact" in p for p in validate_record(record))

    def test_numeric_field_rejects_bool(self):
        record = _manifest(
            estimates={"misses": _estimate(ci_low=True)}
        ).record()
        assert any("ci_low" in p for p in validate_record(record))

    def test_invalid_estimates_refused_at_write(self, tmp_path):
        manifest = _manifest(estimates={"misses": {"value": 1.0}})
        with pytest.raises(TelemetryError):
            write_manifest(manifest, tmp_path / "manifests.jsonl")
