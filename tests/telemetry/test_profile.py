"""The profiling hooks: off means off, on means observed — never changed.

``phase()`` wraps kernel/stream/sampling hot paths.  The contract has
two halves: with profiling off the hook is a shared null context (no
timer, no allocation, no session traffic), and with profiling on the
simulation's results are still bit-identical — the phase timers only
*watch* (the Monster property, extended to the profiler).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.telemetry.profile import (
    KNOWN_PHASES,
    PROFILE_BUCKET_SECS,
    phase,
    profiling_enabled,
)
from repro.telemetry.session import active, deactivate, enabled
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert active() is None, "a telemetry session leaked into this test"
    yield
    if active() is not None:  # pragma: no cover - cleanup on test failure
        deactivate()


def _run():
    spec = get_workload("espresso")
    config = TapewormConfig(cache=CacheConfig(size_bytes=2048))
    options = RunOptions(total_refs=30_000, trial_seed=3)
    return run_trap_driven(spec, config, options)


class TestPhaseGate:
    def test_no_session_returns_shared_null_context(self):
        assert profiling_enabled() is False
        first = phase("kernels.dm_pass")
        second = phase("kernels.tlb_chunk")
        assert first is second  # the shared singleton, not an allocation
        with first:
            pass  # and it is a usable context manager

    def test_plain_session_keeps_profiling_off(self):
        with enabled() as session:
            assert profiling_enabled() is False
            with phase("kernels.dm_pass"):
                pass
        assert len(session.metrics) == 0
        assert len(session.spans) == 0

    def test_profile_session_publishes_histogram_and_span(self):
        with enabled(profile=True) as session:
            assert profiling_enabled() is True
            with phase("machine.rescan_index", kind="granule"):
                pass
        snapshot = session.metrics.snapshot()
        series = snapshot["profile.machine.rescan_index{kind=granule}"]
        assert series["count"] == 1
        assert series["sum"] >= 0.0
        (span,) = session.spans.spans
        assert span.name == "profile.machine.rescan_index"
        assert span.args == {"kind": "granule"}
        assert span.dur_us >= 0.0

    def test_phase_nests_under_enclosing_span(self):
        with enabled(profile=True) as session:
            with session.spans.span("farm.job") as job:
                with phase("kernels.dm_pass"):
                    pass
        job_span, phase_span = session.spans.spans
        assert phase_span.parent_id == job.span_id

    def test_exception_still_publishes(self):
        with enabled(profile=True) as session:
            with pytest.raises(RuntimeError):
                with phase("streams.blob_map"):
                    raise RuntimeError("boom")
        assert (
            session.metrics.snapshot()["profile.streams.blob_map"]["count"]
            == 1
        )

    def test_known_phases_are_valid_metric_names(self):
        # every wired phase must produce a legal registry key
        with enabled(profile=True) as session:
            for name in KNOWN_PHASES:
                with phase(name):
                    pass
        snapshot = session.metrics.snapshot()
        for name in KNOWN_PHASES:
            assert snapshot[f"profile.{name}"]["count"] == 1

    def test_bucket_bounds_are_ascending(self):
        assert list(PROFILE_BUCKET_SECS) == sorted(PROFILE_BUCKET_SECS)


class TestUnobtrusive:
    def test_report_bit_identical_with_profiling_on(self):
        baseline = _run()
        with enabled(profile=True) as session:
            profiled = _run()
        control = _run()

        assert dataclasses.asdict(profiled) == dataclasses.asdict(baseline)
        assert dataclasses.asdict(control) == dataclasses.asdict(baseline)
        assert profiled.slowdown == baseline.slowdown

        # while the profiler genuinely measured the run: trap-driven
        # simulation rebuilds its rescan index under a phase timer
        snapshot = session.metrics.snapshot()
        profile_keys = [k for k in snapshot if k.startswith("profile.")]
        assert profile_keys, "profiling on but no profile.* series"
        assert (
            snapshot["profile.machine.rescan_index{kind=granule}"]["count"] > 0
        )

    def test_profile_off_records_no_profile_series(self):
        with enabled() as session:
            _run()
        assert not [
            k for k in session.metrics.snapshot() if k.startswith("profile.")
        ]


class TestKernelPhases:
    """The replay kernels fire their phase timers, bit-identically."""

    def _addresses(self):
        import numpy as np

        rng = np.random.default_rng(11)
        return rng.integers(0, 1 << 16, size=4_096, dtype=np.int64)

    def test_dm_and_grouped_set_phases_fire_without_changing_misses(self):
        import numpy as np  # noqa: F401  (addresses helper)

        from repro.caches.config import CacheConfig
        from repro.caches.kernels import GroupedSetKernel

        addresses = self._addresses()
        baseline_dm = GroupedSetKernel(
            CacheConfig(size_bytes=2048)
        ).simulate_chunk(addresses)
        baseline_4way = GroupedSetKernel(
            CacheConfig(size_bytes=2048, associativity=4)
        ).simulate_chunk(addresses)

        with enabled(profile=True) as session:
            dm = GroupedSetKernel(
                CacheConfig(size_bytes=2048)
            ).simulate_chunk(addresses)
            assoc = GroupedSetKernel(
                CacheConfig(size_bytes=2048, associativity=4)
            ).simulate_chunk(addresses)
        assert dm == baseline_dm
        assert assoc == baseline_4way
        snapshot = session.metrics.snapshot()
        assert snapshot["profile.kernels.dm_pass"]["count"] == 1
        assert snapshot["profile.kernels.grouped_set"]["count"] == 1

    def test_tlb_chunk_phase_fires_without_changing_misses(self):
        from repro.caches.config import TLBConfig
        from repro.caches.tlb import SimulatedTLB

        vpns = self._addresses() >> 12
        baseline = SimulatedTLB(TLBConfig(32)).access_chunk(0, vpns)
        with enabled(profile=True) as session:
            observed = SimulatedTLB(TLBConfig(32)).access_chunk(0, vpns)
        assert observed == baseline
        assert (
            session.metrics.snapshot()["profile.kernels.tlb_chunk"]["count"]
            == 1
        )
