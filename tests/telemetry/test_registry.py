"""Counters, gauges, histograms and the registry's naming contract."""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry.registry import (
    CYCLE_BUCKETS,
    TIME_BUCKET_SECS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    metric_key,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("machine.cpu.refs", {}) == "machine.cpu.refs"

    def test_labels_sorted(self):
        key = metric_key("tapeworm.misses", {"component": "user", "a": "b"})
        assert key == "tapeworm.misses{a=b,component=user}"

    @pytest.mark.parametrize(
        "bad",
        ["", "Machine.cpu", "machine..cpu", ".cpu", "cpu.", "machine cpu", "9abc"],
    )
    def test_bad_names_rejected(self, bad):
        with pytest.raises(TelemetryError):
            metric_key(bad, {})

    def test_underscores_and_digits_ok(self):
        assert metric_key("farm.jobs_v2.l2", {}) == "farm.jobs_v2.l2"


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.snapshot() == 0
        c.inc()
        c.inc(41)
        assert c.snapshot() == 42

    def test_negative_increment_rejected(self):
        c = Counter()
        with pytest.raises(TelemetryError):
            c.inc(-1)
        assert c.snapshot() == 0


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge()
        g.set(7)
        g.set(3)
        assert g.snapshot() == 3


class TestHistogram:
    def test_bounds_must_ascend(self):
        with pytest.raises(TelemetryError):
            Histogram(())
        with pytest.raises(TelemetryError):
            Histogram((1.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram((2.0, 1.0))

    def test_exact_count_sum_min_max(self):
        h = Histogram((1.0, 10.0))
        for v in (0.25, 3.5, 99.0, 0.5):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(103.25)
        assert h.minimum == 0.25
        assert h.maximum == 99.0
        assert h.mean == pytest.approx(103.25 / 4)

    def test_overflow_bucket_catches_large_values(self):
        h = Histogram((1.0,))
        h.observe(0.5)
        h.observe(100.0)
        assert h.counts == [1, 1]

    def test_memory_stays_bounded(self):
        h = Histogram(TIME_BUCKET_SECS)
        for i in range(10_000):
            h.observe(i * 0.01)
        assert len(h.counts) == len(TIME_BUCKET_SECS) + 1
        assert h.count == 10_000

    def test_percentile_clamps_to_observed_extrema(self):
        h = Histogram((100.0,))
        h.observe(40.0)
        h.observe(60.0)
        assert h.percentile(0) >= h.minimum
        assert h.percentile(100) <= h.maximum
        assert h.minimum <= h.percentile(50) <= h.maximum

    def test_percentile_uniform_data_roughly_linear(self):
        h = Histogram(tuple(float(b) for b in range(10, 110, 10)))
        for i in range(1, 101):
            h.observe(float(i))
        # uniform 1..100: p50 should land near 50, p90 near 90
        assert h.percentile(50) == pytest.approx(50.0, abs=10.0)
        assert h.percentile(90) == pytest.approx(90.0, abs=10.0)

    def test_percentile_empty_and_range_check(self):
        h = Histogram((1.0,))
        assert h.percentile(50) == 0.0
        with pytest.raises(TelemetryError):
            h.percentile(101)
        with pytest.raises(TelemetryError):
            h.percentile(-1)

    def test_merge_sums_exactly(self):
        a, b = Histogram((1.0, 10.0)), Histogram((1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b)
        assert a.count == 3
        assert a.total == pytest.approx(55.5)
        assert a.minimum == 0.5
        assert a.maximum == 50.0
        assert a.counts == [1, 1, 1]

    def test_merge_empty_is_identity(self):
        a = Histogram((1.0,))
        a.observe(0.5)
        before = (a.count, a.total, a.minimum, a.maximum, list(a.counts))
        a.merge(Histogram((1.0,)))
        assert (a.count, a.total, a.minimum, a.maximum, list(a.counts)) == before

    def test_merge_into_empty_adopts_extrema(self):
        a, b = Histogram((1.0,)), Histogram((1.0,))
        b.observe(0.25)
        a.merge(b)
        assert (a.minimum, a.maximum) == (0.25, 0.25)

    def test_merge_mismatched_bounds_rejected(self):
        with pytest.raises(TelemetryError):
            Histogram((1.0,)).merge(Histogram((2.0,)))

    def test_snapshot_shape(self):
        h = Histogram((1.0, 10.0))
        h.observe(0.5)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["sum"] == 0.5
        assert set(snap["buckets"]) == {"le_1", "le_10", "le_inf"}
        for p in ("p50", "p90", "p99"):
            assert snap["min"] <= snap[p] <= snap["max"]


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a.b") is reg.counter("a.b")
        assert len(reg) == 1

    def test_labels_distinguish_metrics(self):
        reg = MetricsRegistry()
        reg.counter("machine.cpu.refs", component="user").inc(3)
        reg.counter("machine.cpu.refs", component="kernel").inc(5)
        snap = reg.snapshot()
        assert snap["machine.cpu.refs{component=user}"] == 3
        assert snap["machine.cpu.refs{component=kernel}"] == 5

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a.b")
        with pytest.raises(TelemetryError):
            reg.gauge("a.b")
        with pytest.raises(TelemetryError):
            reg.histogram("a.b")

    def test_histogram_bounds_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h.one", bounds=TIME_BUCKET_SECS)
        with pytest.raises(TelemetryError):
            reg.histogram("h.one", bounds=tuple(float(b) for b in CYCLE_BUCKETS))

    def test_contains_uses_full_key(self):
        reg = MetricsRegistry()
        reg.counter("a.b", k="v")
        assert "a.b{k=v}" in reg
        assert "a.b" not in reg

    def test_snapshot_sorted_and_json_shaped(self):
        import json

        reg = MetricsRegistry()
        reg.counter("z.last").inc(1)
        reg.gauge("a.first").set(2)
        reg.histogram("m.mid").observe(0.5)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        json.dumps(snap)  # must be JSON-encodable
