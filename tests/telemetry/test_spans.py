"""Span tracing: nesting, bounded capacity, serialization, Chrome merge.

The span layer is the cross-process half of the observability story:
workers serialize spans into the job-result envelope and the master
re-hydrates them into per-worker Chrome lanes.  These tests pin the
parts that must survive a process boundary — ids, parent links, the
serialized record layout — and the merge semantics of the trace files.
"""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.telemetry.events import FARM_PID
from repro.telemetry.session import (
    TelemetrySession,
    activate,
    active,
    deactivate,
)
from repro.telemetry.spans import (
    WORKER_PID,
    SpanRecorder,
    chrome_span_events,
    merge_chrome_traces,
    merged_chrome_trace,
    new_run_id,
    span,
    span_from_dict,
    spans_from_dicts,
)


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert active() is None, "a telemetry session leaked into this test"
    yield
    if active() is not None:  # pragma: no cover - cleanup on test failure
        deactivate()


class TestSpanRecorder:
    def test_nesting_assigns_parent_ids(self):
        recorder = SpanRecorder()
        with recorder.span("batch") as batch:
            with recorder.span("job") as job:
                with recorder.span("measure") as measure:
                    pass
            with recorder.span("cache_write") as write:
                pass
        assert batch.parent_id is None
        assert job.parent_id == batch.span_id
        assert measure.parent_id == job.span_id
        assert write.parent_id == batch.span_id
        assert len(recorder) == 4

    def test_sibling_spans_do_not_parent_each_other(self):
        recorder = SpanRecorder()
        with recorder.span("first"):
            pass
        with recorder.span("second") as second:
            pass
        assert second.parent_id is None

    def test_durations_are_positive_and_start_monotone(self):
        recorder = SpanRecorder()
        with recorder.span("a"):
            pass
        with recorder.span("b"):
            pass
        a, b = recorder.spans
        assert a.dur_us >= 0.0 and b.dur_us >= 0.0
        assert b.start_us >= a.start_us

    def test_capacity_drops_latest_deepest_roots_survive(self):
        recorder = SpanRecorder(capacity=2)
        with recorder.span("root") as root:
            with recorder.span("child") as child:
                with recorder.span("grandchild") as grandchild:
                    pass
            with recorder.span("second_child") as second:
                pass
        # slots claimed on entry: root and child got in, the rest dropped
        assert root is not None and child is not None
        assert grandchild is None and second is None
        assert [s.name for s in recorder.spans] == ["root", "child"]
        assert recorder.dropped == 2

    def test_dropped_span_does_not_corrupt_parent_stack(self):
        recorder = SpanRecorder(capacity=1)
        with recorder.span("root") as root:
            with recorder.span("dropped") as nothing:
                pass
        assert nothing is None
        # the drop never pushed onto the stack, so closing "root" still
        # balances and a later recorder use is sane
        assert root.dur_us >= 0.0
        assert recorder._stack == []

    def test_args_are_recorded(self):
        recorder = SpanRecorder()
        with recorder.span("job", job_key="abc123", seed=7) as record:
            pass
        assert record.args == {"job_key": "abc123", "seed": 7}

    def test_bad_capacity_rejected(self):
        with pytest.raises(TelemetryError):
            SpanRecorder(capacity=0)


class TestSerialization:
    def _record_two(self):
        recorder = SpanRecorder()
        with recorder.span("worker.job", run_id="r1", job_key="k1"):
            with recorder.span("measure"):
                pass
        return recorder

    def test_round_trip_preserves_ids_and_parents(self):
        recorder = self._record_two()
        hydrated = spans_from_dicts(recorder.to_dicts())
        assert [s.name for s in hydrated] == ["worker.job", "measure"]
        outer, inner = hydrated
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert outer.args == {"run_id": "r1", "job_key": "k1"}
        assert inner.args is None

    def test_round_trip_is_json_safe(self):
        import json

        recorder = self._record_two()
        wire = json.loads(json.dumps(recorder.to_dicts()))
        hydrated = spans_from_dicts(wire)
        assert hydrated[1].parent_id == hydrated[0].span_id

    @pytest.mark.parametrize(
        "record",
        [
            {},
            {"name": "x"},
            {"name": "x", "id": "not-a-number", "parent": None,
             "start_us": 0.0, "dur_us": 0.0},
            {"name": "x", "id": 1, "parent": None, "start_us": "soon",
             "dur_us": 0.0},
        ],
    )
    def test_malformed_record_raises(self, record):
        with pytest.raises(TelemetryError):
            span_from_dict(record)


class TestModuleLevelSpan:
    def test_noop_without_session(self):
        with span("anything") as record:
            assert record is None

    def test_records_on_active_session(self):
        session = activate(TelemetrySession())
        try:
            with span("farm.batch", jobs=3) as record:
                pass
        finally:
            deactivate()
        assert record is not None
        assert [s.name for s in session.spans.spans] == ["farm.batch"]
        assert session.spans.spans[0].args == {"jobs": 3}


class TestChromeRendering:
    def test_span_events_carry_lane_and_correlation(self):
        recorder = SpanRecorder()
        with recorder.span("job", job_key="k"):
            pass
        (event,) = chrome_span_events(
            recorder.spans, pid=WORKER_PID, tid=2, shift_us=100.0, run_id="r"
        )
        assert event["ph"] == "X" and event["cat"] == "span"
        assert event["pid"] == WORKER_PID and event["tid"] == 2
        assert event["ts"] == pytest.approx(
            recorder.spans[0].start_us + 100.0
        )
        assert event["dur"] >= 0.001  # zero-length spans stay visible
        assert event["args"]["run_id"] == "r"
        assert event["args"]["job_key"] == "k"
        assert event["args"]["span_id"] == recorder.spans[0].span_id

    def test_merged_trace_has_master_and_worker_lanes(self):
        session = TelemetrySession()
        with session.spans.span("farm.batch"):
            pass
        envelope = {
            "v": 1,
            "worker_pid": 4242,
            "run_id": session.run_id,
            "job_key": "k",
            "spans": [
                {"name": "worker.job", "id": 1, "parent": None,
                 "start_us": 0.0, "dur_us": 5.0},
            ],
            "spans_dropped": 0,
            "metrics": {"v": 1, "series": {}},
        }
        session.absorb_worker_envelope(envelope, shift_us=250.0)
        trace = merged_chrome_trace(session)
        events = trace["traceEvents"]

        master = [
            e for e in events
            if e.get("pid") == FARM_PID and e.get("cat") == "span"
        ]
        assert [e["name"] for e in master] == ["farm.batch"]

        worker = [
            e for e in events
            if e.get("pid") == WORKER_PID and e.get("ph") == "X"
        ]
        (job_event,) = worker
        assert job_event["ts"] == pytest.approx(250.0)
        assert job_event["args"]["run_id"] == session.run_id
        assert job_event["args"]["worker"] == 4242

        names = [
            e["args"]["name"] for e in events
            if e.get("ph") == "M" and e.get("pid") == WORKER_PID
        ]
        assert "farm workers" in names
        assert "worker 4242" in names

        other = trace["otherData"]
        assert other["run_id"] == session.run_id
        assert other["spans"] == 1
        assert other["worker_lanes"] == 1

    def test_run_ids_are_fresh(self):
        assert new_run_id() != new_run_id()
        assert len(new_run_id()) == 12


class TestMergeChromeTraces:
    def _trace(self, pid, name):
        return {
            "traceEvents": [
                {"name": name, "ph": "X", "pid": pid, "tid": 1,
                 "ts": 0.0, "dur": 1.0},
            ],
            "otherData": {"run_id": name},
        }

    def test_pids_remapped_into_disjoint_blocks(self):
        merged = merge_chrome_traces(
            [self._trace(1, "first"), self._trace(1, "second")]
        )
        pids = [e["pid"] for e in merged["traceEvents"]]
        assert pids == [1, 101]
        assert merged["otherData"]["inputs"] == 2
        assert [o["run_id"] for o in merged["otherData"]["merged"]] == [
            "first", "second",
        ]

    def test_inputs_not_mutated(self):
        payload = self._trace(2, "only")
        merge_chrome_traces([payload, payload])
        assert payload["traceEvents"][0]["pid"] == 2

    def test_not_a_trace_raises(self):
        with pytest.raises(TelemetryError):
            merge_chrome_traces([{"otherData": {}}])

    def test_malformed_event_raises(self):
        with pytest.raises(TelemetryError):
            merge_chrome_traces([{"traceEvents": [{"name": "no pid"}]}])
