"""The telemetry contract: enabling it cannot change any result.

This is the Monster property from the paper — observation that is
"unobtrusive by construction" — restated for software telemetry: a
trap-driven run must produce a bit-identical :class:`TrapRunReport`
whether a telemetry session is active or not, while the session itself
fills with events, metrics and a schema-valid manifest.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import TelemetryError
from repro.harness.runner import RunOptions, run_trap_driven
from repro.telemetry import manifest as manifest_mod
from repro.telemetry.manifest import RunManifest, config_hash, validate_record
from repro.telemetry.session import (
    TelemetrySession,
    activate,
    active,
    deactivate,
    enabled,
)
from repro.workloads import get_workload


@pytest.fixture(autouse=True)
def _no_leaked_session():
    assert active() is None, "a telemetry session leaked into this test"
    yield
    if active() is not None:  # pragma: no cover - cleanup on test failure
        deactivate()


def _run():
    spec = get_workload("espresso")
    config = TapewormConfig(cache=CacheConfig(size_bytes=2048))
    options = RunOptions(total_refs=30_000, trial_seed=3)
    return run_trap_driven(spec, config, options)


def _as_comparable(report) -> dict:
    fields = dataclasses.asdict(report)
    # CacheStats nests dicts/lists of plain numbers; asdict flattens it
    return fields


class TestSessionLifecycle:
    def test_activate_deactivate(self):
        session = activate()
        assert active() is session
        assert deactivate() is session
        assert active() is None

    def test_double_activate_rejected(self):
        activate()
        try:
            with pytest.raises(TelemetryError):
                activate()
        finally:
            deactivate()

    def test_deactivate_without_session_rejected(self):
        with pytest.raises(TelemetryError):
            deactivate()

    def test_enabled_scopes_session_even_on_error(self):
        with pytest.raises(RuntimeError):
            with enabled():
                assert active() is not None
                raise RuntimeError("boom")
        assert active() is None

    def test_custom_session_object_installed(self):
        session = TelemetrySession(trace_capacity=8)
        assert activate(session) is session
        assert deactivate() is session


class TestBitIdentical:
    def test_trap_run_report_identical_with_and_without_telemetry(self):
        baseline = _run()
        with enabled() as session:
            observed = _run()
        control = _run()

        # the harness is deterministic: two plain runs agree exactly...
        assert _as_comparable(baseline) == _as_comparable(control)
        # ...and the telemetered run is bit-identical to both,
        # field by field (slowdown is a float: equality, not approx)
        assert _as_comparable(observed) == _as_comparable(baseline)
        assert observed.slowdown == baseline.slowdown
        assert observed.estimated_misses == baseline.estimated_misses

        # while telemetry genuinely observed the run
        assert session.trace.recorded > 0
        assert len(session.metrics) > 0
        snapshot = session.metrics.snapshot()
        assert snapshot["tapeworm.overhead_cycles"] == baseline.overhead_cycles
        assert snapshot["machine.traps.dispatched{kind=ecc_error}"] > 0

    def test_metrics_agree_with_report(self):
        with enabled() as session:
            report = _run()
        snapshot = session.metrics.snapshot()
        assert snapshot["tapeworm.estimated_misses"] == report.estimated_misses
        # zero-valued counters are elided from publication
        assert snapshot.get("tapeworm.l2_misses", 0) == report.stats.l2_misses
        misses = sum(
            value
            for key, value in snapshot.items()
            if key.startswith("tapeworm.misses{")
        )
        assert misses == report.stats.total_misses
        total_refs = sum(
            value
            for key, value in snapshot.items()
            if key.startswith("machine.cpu.refs{")
        )
        assert total_refs == report.total_refs

    def test_trace_exports_valid_chrome_trace(self, tmp_path):
        with enabled() as session:
            _run()
        path = session.trace.write_chrome_trace(tmp_path / "trace.json")
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert any(e.get("cat") == "trap" for e in events)
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        # timestamps are monotone-ish in simulated time per lane: at
        # minimum every non-metadata event carries a numeric ts
        assert all(
            isinstance(e["ts"], (int, float)) for e in events if e["ph"] != "M"
        )

    def test_manifest_from_run_is_schema_valid(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            manifest_mod, "DEFAULT_MANIFEST_PATH", tmp_path / "manifests.jsonl"
        )
        with enabled() as session:
            report = _run()
        manifest = RunManifest(
            kind="run",
            name=report.workload,
            configuration=report.configuration,
            config_hash=config_hash({"workload": report.workload}),
            seed=report.trial_seed,
            wall_clock_secs=0.5,
            metrics=session.metrics.snapshot(),
            results={"misses": report.stats.total_misses},
        )
        path = manifest_mod.write_manifest(manifest)
        assert path == tmp_path / "manifests.jsonl"
        (record,) = manifest_mod.read_manifests()
        assert validate_record(record) == []
        assert record["results"]["misses"] == report.stats.total_misses


class TestGridSweepUnobtrusive:
    """The pin extends to grid sweeps: telemetry cannot perturb them."""

    def _sweep(self):
        from repro.caches.config import GridConfig
        from repro.caches.gridsweep import run_grid_sweep

        grid = GridConfig((32, 64), (1, 2, 4))
        return run_grid_sweep(get_workload("espresso"), 25_000, grid)

    def test_grid_report_identical_with_and_without_telemetry(self):
        baseline = self._sweep()
        with enabled() as session:
            observed = self._sweep()

        # wall-clock timing is the only field allowed to differ
        assert dataclasses.replace(
            observed, distance_secs=baseline.distance_secs
        ) == baseline

        # while the session genuinely observed the sweep
        snapshot = session.metrics.snapshot()
        assert snapshot["sweep.grid.passes"] == observed.passes
        assert snapshot["sweep.grid.configs"] == observed.grid.n_cells
        spans = [s for s in session.spans.spans if s.name == "sweep.grid"]
        assert len(spans) == 1
        assert spans[0].args["workload"] == "espresso"

    def test_grid_metrics_agree_with_report(self):
        with enabled() as session:
            report = self._sweep()
        snapshot = session.metrics.snapshot()
        assert snapshot["sweep.grid.passes"] == report.passes
        assert snapshot["sweep.grid.configs"] == len(report.miss_counts)


class TestBoundedTrace:
    def test_tiny_ring_drops_but_run_is_unaffected(self):
        baseline = _run()
        with enabled(trace_capacity=16) as session:
            observed = _run()
        assert session.trace.dropped > 0
        assert len(session.trace.events()) == 16
        assert _as_comparable(observed) == _as_comparable(baseline)
