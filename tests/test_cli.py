"""The command-line interface."""

import pytest

from repro.cli import _parse_size, build_parser, main


class TestParsing:
    def test_sizes(self):
        assert _parse_size("4096") == 4096
        assert _parse_size("4K") == 4096
        assert _parse_size("1M") == 1024 * 1024
        assert _parse_size("16k") == 16384

    def test_bad_size(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_size("lots")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_workloads_lists_all_eight(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("xlisp", "sdet", "kenbus", "mpeg_play"):
            assert name in out

    def test_run_cache(self, capsys):
        code = main(
            [
                "run", "--workload", "espresso", "--cache-size", "2K",
                "--refs", "30000", "--simulate", "user",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "2K 1-way" in out

    def test_run_tlb(self, capsys):
        code = main(
            [
                "run", "--workload", "xlisp", "--structure", "tlb",
                "--tlb-entries", "32", "--refs", "30000",
            ]
        )
        assert code == 0
        assert "32-entry" in capsys.readouterr().out

    def test_run_sampling(self, capsys):
        code = main(
            [
                "run", "--workload", "espresso", "--sampling", "8",
                "--refs", "30000",
            ]
        )
        assert code == 0
        assert "estimated" in capsys.readouterr().out

    def test_trace(self, capsys):
        code = main(
            ["trace", "--workload", "mpeg_play", "--refs", "30000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out

    def test_reproduce_static(self, capsys):
        assert main(["reproduce", "table12"]) == 0
        assert "PowerPC" in capsys.readouterr().out

    def test_reproduce_dynamic_smoke(self, capsys):
        assert main(["reproduce", "table5", "--budget", "smoke"]) == 0
        assert "246" in capsys.readouterr().out

    def test_profile(self, capsys):
        assert main(["profile", "espresso", "--refs", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Footprint" in out
        assert "espresso" in out and "bsd_server" in out

    def test_assess_port(self, capsys):
        assert main(["assess-port", "MIPS R3000"]) == 0
        assert "yes" in capsys.readouterr().out

    def test_assess_port_unknown(self, capsys):
        assert main(["assess-port", "Z80"]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "figure99"])
