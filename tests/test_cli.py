"""The command-line interface."""

import json

import pytest

from repro.cli import _parse_size, build_parser, main
from repro.telemetry import validate_record


@pytest.fixture(autouse=True)
def _isolated_cwd(tmp_path, monkeypatch):
    """Commands write their manifest log (and farm cache) relative to
    the cwd; keep test runs out of the repository checkout."""
    monkeypatch.chdir(tmp_path)


class TestParsing:
    def test_sizes(self):
        assert _parse_size("4096") == 4096
        assert _parse_size("4K") == 4096
        assert _parse_size("1M") == 1024 * 1024
        assert _parse_size("16k") == 16384

    def test_bad_size(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_size("lots")

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_workloads_lists_all_eight(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("xlisp", "sdet", "kenbus", "mpeg_play"):
            assert name in out

    def test_run_cache(self, capsys):
        code = main(
            [
                "run", "--workload", "espresso", "--cache-size", "2K",
                "--refs", "30000", "--simulate", "user",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "slowdown" in out
        assert "2K 1-way" in out

    def test_run_tlb(self, capsys):
        code = main(
            [
                "run", "--workload", "xlisp", "--structure", "tlb",
                "--tlb-entries", "32", "--refs", "30000",
            ]
        )
        assert code == 0
        assert "32-entry" in capsys.readouterr().out

    def test_run_sampling(self, capsys):
        code = main(
            [
                "run", "--workload", "espresso", "--sampling", "8",
                "--refs", "30000",
            ]
        )
        assert code == 0
        assert "estimated" in capsys.readouterr().out

    def test_trace(self, capsys):
        code = main(
            ["trace", "--workload", "mpeg_play", "--refs", "30000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "miss ratio" in out

    def test_reproduce_static(self, capsys):
        assert main(["reproduce", "table12"]) == 0
        assert "PowerPC" in capsys.readouterr().out

    def test_reproduce_dynamic_smoke(self, capsys):
        assert main(["reproduce", "table5", "--budget", "smoke"]) == 0
        assert "246" in capsys.readouterr().out

    def test_profile(self, capsys):
        assert main(["profile", "espresso", "--refs", "20000"]) == 0
        out = capsys.readouterr().out
        assert "Footprint" in out
        assert "espresso" in out and "bsd_server" in out

    def test_assess_port(self, capsys):
        assert main(["assess-port", "MIPS R3000"]) == 0
        assert "yes" in capsys.readouterr().out

    def test_assess_port_unknown(self, capsys):
        assert main(["assess-port", "Z80"]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["reproduce", "figure99"])


class TestSweepCommand:
    SWEEP = [
        "sweep", "grid", "--workload", "espresso", "--refs", "20000",
        "--sets", "32,64", "--ways", "1,2",
    ]

    def test_grid_table(self, capsys):
        assert main(self.SWEEP) == 0
        out = capsys.readouterr().out
        assert "sets" in out and "ways" in out
        assert "passes" in out

    def test_grid_json_matches_per_config_runs(self, capsys):
        assert main(self.SWEEP + ["--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["miss_counts"]) == {
            "32x1", "32x2", "64x1", "64x2"
        }
        assert set(payload["stack_distance_hist"]) == {"32", "64"}
        for hist in payload["stack_distance_hist"].values():
            assert (
                sum(hist["counts"]) + hist["overflow"] + hist["cold"]
                == payload["refs"]
            )

        from repro.caches.config import GridConfig
        from repro.tracing.cache2000 import Cache2000
        from repro.tracing.pixie import PixieTracer
        from repro.workloads import get_workload

        grid = GridConfig((32, 64), (1, 2))
        reference = Cache2000(grid.config_for(64, 2))
        tracer = PixieTracer(get_workload("espresso"))
        for chunk in tracer.trace_chunks(20000):
            reference.simulate_chunk(chunk.addresses, tid=chunk.tid)
        assert (
            payload["miss_counts"]["64x2"]
            == reference.stats.total_misses
        )

    def test_grid_writes_schema_valid_manifest(self, tmp_path, capsys):
        manifest_path = tmp_path / "manifests.jsonl"
        assert main(
            self.SWEEP + ["--manifest-out", str(manifest_path)]
        ) == 0
        capsys.readouterr()
        records = [
            json.loads(line)
            for line in manifest_path.read_text().splitlines()
        ]
        (record,) = records
        assert validate_record(record) == []
        assert record["kind"] == "sweep"
        assert record["name"] == "grid"
        assert "stack_distance_hist" in record["results"]
        assert len(record["results"]["rows"]) == 4

    def test_grid_bad_axis_list_rejected(self):
        with pytest.raises(SystemExit):
            main(["sweep", "grid", "--sets", "64,banana"])


class TestTelemetryOutputs:
    RUN = [
        "run", "--workload", "espresso", "--cache-size", "2K",
        "--refs", "20000", "--simulate", "user",
    ]

    def test_run_writes_trace_metrics_and_manifest(self, tmp_path, capsys):
        trace_path = tmp_path / "out" / "trace.json"
        metrics_path = tmp_path / "out" / "metrics.json"
        manifest_path = tmp_path / "out" / "manifests.jsonl"
        code = main(
            self.RUN
            + [
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        assert "slowdown" in capsys.readouterr().out

        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
        assert {e["ph"] for e in trace["traceEvents"]} <= {"M", "X", "i"}
        assert trace["otherData"]["dropped"] == 0

        metrics = json.loads(metrics_path.read_text())
        assert any(key.startswith("tapeworm.") for key in metrics)
        assert any(key.startswith("machine.cpu.refs") for key in metrics)

        (line,) = manifest_path.read_text().splitlines()
        record = json.loads(line)
        assert validate_record(record) == []
        assert record["kind"] == "run"
        assert record["name"] == "espresso"
        assert record["results"]["misses"] > 0

    def test_run_default_manifest_location(self, tmp_path):
        assert main(self.RUN) == 0
        log = tmp_path / ".farm-cache" / "manifests.jsonl"
        assert log.exists()
        (record,) = [json.loads(l) for l in log.read_text().splitlines()]
        assert validate_record(record) == []

    def test_no_manifest_suppresses_record(self, tmp_path):
        assert main(self.RUN + ["--no-manifest"]) == 0
        assert not (tmp_path / ".farm-cache" / "manifests.jsonl").exists()

    def test_metrics_out_stdout(self, capsys):
        assert main(self.RUN + ["--metrics-out", "-", "--no-manifest"]) == 0
        out = capsys.readouterr().out
        payload = out[out.index("{") :]
        metrics = json.loads(payload)
        assert "tapeworm.overhead_cycles" in metrics

    def test_trace_capacity_bounds_the_ring(self, tmp_path):
        trace_path = tmp_path / "trace.json"
        code = main(
            self.RUN
            + [
                "--trace-out", str(trace_path),
                "--trace-capacity", "8",
                "--no-manifest",
            ]
        )
        assert code == 0
        trace = json.loads(trace_path.read_text())
        assert trace["otherData"]["capacity"] == 8
        assert trace["otherData"]["dropped"] > 0
        real = [e for e in trace["traceEvents"] if e["ph"] != "M"]
        assert len(real) == 8

    def test_reproduce_table7_exports_artifacts(self, tmp_path, capsys):
        """The acceptance path: a Table 7 run exports a Chrome trace and
        a schema-valid JSONL manifest."""
        trace_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "metrics.json"
        manifest_path = tmp_path / "manifests.jsonl"
        code = main(
            [
                "reproduce", "table7", "--budget", "tiny",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
                "--manifest-out", str(manifest_path),
            ]
        )
        assert code == 0
        assert "Table 7" in capsys.readouterr().out

        trace = json.loads(trace_path.read_text())
        assert any(e.get("cat") == "trap" for e in trace["traceEvents"])
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "simulated machine" in names

        metrics = json.loads(metrics_path.read_text())
        assert any(key.startswith("tapeworm.traps") for key in metrics)

        (record,) = [
            json.loads(line)
            for line in manifest_path.read_text().splitlines()
        ]
        assert validate_record(record) == []
        assert record["kind"] == "experiment"
        assert record["name"] == "table7"
        assert record["results"]["budget"] == "tiny"

    def test_manifest_out_stdout(self, capsys):
        assert main(self.RUN + ["--manifest-out", "-"]) == 0
        out = capsys.readouterr().out
        line = [l for l in out.splitlines() if l.startswith("{")][-1]
        assert validate_record(json.loads(line)) == []


class TestTelemetryCommand:
    def _seed_log(self):
        assert main(
            [
                "run", "--workload", "espresso", "--cache-size", "2K",
                "--refs", "20000", "--simulate", "user",
            ]
        ) == 0

    def test_manifests_table(self, capsys):
        self._seed_log()
        capsys.readouterr()
        assert main(["telemetry", "manifests"]) == 0
        out = capsys.readouterr().out
        assert "Run manifests" in out
        assert "espresso" in out

    def test_manifests_json(self, capsys):
        self._seed_log()
        capsys.readouterr()
        assert main(["telemetry", "manifests", "--json"]) == 0
        (line,) = capsys.readouterr().out.splitlines()
        assert validate_record(json.loads(line)) == []

    def test_manifests_empty_log(self, capsys):
        assert main(["telemetry", "manifests"]) == 0
        assert "no manifest records" in capsys.readouterr().out

    def test_manifests_last_n(self, capsys):
        for _ in range(3):
            self._seed_log()
        capsys.readouterr()
        assert main(["telemetry", "manifests", "--json", "--last", "2"]) == 0
        assert len(capsys.readouterr().out.splitlines()) == 2

    def test_validate_clean_log(self, capsys):
        self._seed_log()
        capsys.readouterr()
        assert main(["telemetry", "validate"]) == 0
        assert "1 valid, 0 invalid" in capsys.readouterr().out

    def test_validate_flags_bad_records(self, tmp_path, capsys):
        log = tmp_path / "bad.jsonl"
        log.write_text('{"kind": "run"}\n')
        code = main(["telemetry", "validate", "--manifest-path", str(log)])
        assert code == 1
        captured = capsys.readouterr()
        assert "0 valid, 1 invalid" in captured.out
        assert "missing field" in captured.err

    def test_clear(self, tmp_path, capsys):
        self._seed_log()
        capsys.readouterr()
        assert main(["telemetry", "clear"]) == 0
        assert "dropped 1 manifest record(s)" in capsys.readouterr().out
        assert not (tmp_path / ".farm-cache" / "manifests.jsonl").exists()
        assert main(["telemetry", "clear"]) == 0  # idempotent


class TestChaosCommands:
    def test_chaos_plan_prints_the_default_plan(self, capsys):
        assert main(["chaos", "plan"]) == 0
        payload = json.loads(capsys.readouterr().out)
        kinds = {entry["kind"] for entry in payload["faults"]}
        assert "ecc_double" in kinds
        assert "worker_kill" in kinds

    def test_chaos_run_enforces_the_contract(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "seed": 7,
            "audit_every": 1,
            "faults": [
                {"kind": "dma_trap_clear", "start": 1},
                {"kind": "cache_garble", "start": 0},
            ],
        }))
        report_path = tmp_path / "report.json"
        code = main([
            "chaos", "run", "--plan", str(plan_path),
            "--refs", "12000", "--report-out", str(report_path),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "contract  : OK" in out
        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        resolutions = {
            o["kind"]: o["resolution"] for o in report["outcomes"]
        }
        assert resolutions["dma_trap_clear"] == "detected:auditor"
        assert resolutions["cache_garble"] == "absorbed:quarantine"

    def test_run_accepts_a_fault_plan(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps({
            "seed": 7,
            "audit_every": 1,
            "faults": [{"kind": "spurious_trap", "start": 1}],
        }))
        code = main([
            "run", "--workload", "espresso", "--cache-size", "2K",
            "--refs", "20000", "--simulate", "user",
            "--fault-plan", str(plan_path), "--no-manifest",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "faults" in out
        assert "unexpected_trap" in out

    def test_bad_fault_plan_is_a_clean_error(self, tmp_path, capsys):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text('{"faults": [{"kind": "gamma_ray"}]}')
        code = main([
            "run", "--refs", "1000", "--fault-plan", str(plan_path),
            "--no-manifest",
        ])
        assert code == 1
        assert "unknown fault kind" in capsys.readouterr().err


class TestObservabilityCommands:
    """The PR 7 surfaces: farm stats --json, trace merge, telemetry
    top, --profile, and the merged distributed trace."""

    RUN = [
        "run", "--workload", "espresso", "--cache-size", "2K",
        "--refs", "20000", "--simulate", "user",
    ]

    def test_farm_stats_json_on_empty_cache(self, capsys):
        assert main(["farm", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stored_results"] == 0
        assert payload["per_measure"] == {}
        for key in ("runs", "jobs", "cache_hits", "executed"):
            assert key in payload

    def test_farm_stats_json_counts_stored_results(self, capsys):
        assert main(
            [
                "reproduce", "table7", "--budget", "tiny", "--jobs", "2",
                "--no-manifest",
            ]
        ) == 0
        capsys.readouterr()
        assert main(["farm", "stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stored_results"] > 0
        assert "table7.measure" in payload["per_measure"]

    def test_profile_flag_emits_profile_series(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        code = main(
            self.RUN + ["--profile", "--metrics-out", str(metrics_path)]
        )
        assert code == 0
        snapshot = json.loads(metrics_path.read_text())
        assert any(key.startswith("profile.") for key in snapshot)

    def test_no_profile_flag_emits_no_profile_series(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        assert main(self.RUN + ["--metrics-out", str(metrics_path)]) == 0
        snapshot = json.loads(metrics_path.read_text())
        assert not any(key.startswith("profile.") for key in snapshot)

    def test_trace_out_carries_span_metadata(self, tmp_path):
        trace_path = tmp_path / "t.json"
        assert main(self.RUN + ["--trace-out", str(trace_path)]) == 0
        other = json.loads(trace_path.read_text())["otherData"]
        for key in ("run_id", "spans", "spans_dropped", "worker_lanes"):
            assert key in other

    def test_trace_merge_remaps_pids(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.RUN + ["--trace-out", str(first)]) == 0
        assert main(self.RUN + ["--trace-out", str(second)]) == 0
        merged_path = tmp_path / "merged.json"
        capsys.readouterr()
        code = main(
            ["trace", "merge", str(first), str(second),
             "--out", str(merged_path)]
        )
        assert code == 0
        merged = json.loads(merged_path.read_text())
        assert merged["otherData"]["inputs"] == 2
        pids = {e["pid"] for e in merged["traceEvents"]}
        assert any(pid >= 100 for pid in pids)  # input 1's block
        assert len(merged["otherData"]["merged"]) == 2

    def test_trace_merge_to_stdout(self, tmp_path, capsys):
        trace_path = tmp_path / "a.json"
        assert main(self.RUN + ["--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        assert main(["trace", "merge", str(trace_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["otherData"]["inputs"] == 1

    def test_trace_merge_missing_input_exits_two(self, capsys):
        assert main(["trace", "merge", "no-such-trace.json"]) == 2
        assert "no-such-trace.json" in capsys.readouterr().err

    def test_trace_without_subcommand_still_runs_a_trace(self, capsys):
        assert main(["trace", "--workload", "espresso", "--refs", "20000"]) == 0
        assert "miss ratio" in capsys.readouterr().out

    def test_telemetry_top_from_metrics_file(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(self.RUN + ["--metrics-out", str(metrics_path)]) == 0
        capsys.readouterr()
        assert main(["telemetry", "top", "--metrics", str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "Top metric series" in out
        assert "machine.cpu.refs" in out

    def test_telemetry_top_prefix_and_json(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert main(self.RUN + ["--metrics-out", str(metrics_path)]) == 0
        capsys.readouterr()
        code = main(
            ["telemetry", "top", "--metrics", str(metrics_path),
             "--prefix", "machine.", "--json", "-n", "3"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload
        assert len(payload) <= 3
        assert all(key.startswith("machine.") for key in payload)

    def test_telemetry_top_from_latest_manifest(self, capsys):
        assert main(self.RUN) == 0
        capsys.readouterr()
        assert main(["telemetry", "top"]) == 0
        assert "Top metric series" in capsys.readouterr().out

    def test_telemetry_top_missing_snapshot_exits_two(self, capsys):
        assert main(["telemetry", "top", "--metrics", "nope.json"]) == 2

    def test_distributed_run_merges_worker_lanes(self, tmp_path, capsys):
        """The PR acceptance path: a farmed, profiled reproduction
        exports ONE Chrome trace holding the master's lanes plus one
        lane per worker, and the master's metrics hold the workers'."""
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main(
            [
                "reproduce", "table7", "--budget", "tiny", "--jobs", "2",
                "--profile", "--no-manifest",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0, capsys.readouterr().err
        trace = json.loads(trace_path.read_text())
        other = trace["otherData"]
        if other["worker_lanes"] == 0:  # pragma: no cover - restricted env
            import pytest

            pytest.skip("no process pool available")
        assert other["worker_lanes"] >= 2
        worker_jobs = [
            e for e in trace["traceEvents"]
            if e.get("name") == "worker.job" and e.get("ph") == "X"
        ]
        assert worker_jobs
        assert all(
            e["args"]["run_id"] == other["run_id"] for e in worker_jobs
        )
        metrics = json.loads(metrics_path.read_text())
        assert any(k.startswith("farm.worker.") for k in metrics)
        assert any(
            k.startswith(("profile.", "farm.worker.profile."))
            for k in metrics
        )
