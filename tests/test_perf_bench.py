"""The perf microbenchmark suite: schema contract and envelope checks.

``benchmarks/perf`` is the regression baseline future PRs diff against,
so its output schema is pinned here: every record must satisfy the
telemetry manifest schema, and the envelope must self-validate.  The
suite itself runs at the ``tiny`` budget (sub-second) — its internal
assertions double as a cross-path bit-equality check on real streams.
"""

import json

import pytest

from benchmarks.perf import (
    BENCH_SCHEMA_VERSION,
    run_all,
    speedup_of,
    validate_bench,
    write_bench,
)


@pytest.fixture(scope="module")
def payload():
    return run_all("tiny")


def test_payload_is_schema_valid(payload):
    assert validate_bench(payload) == []
    assert payload["schema"] == BENCH_SCHEMA_VERSION


def test_expected_benchmarks_present(payload):
    names = {record["name"] for record in payload["records"]}
    assert {
        "chunk-engine",
        "cache2000-1way-lru",
        "cache2000-2way-lru",
        "cache2000-4way-lru",
        "cache2000-8way-lru",
        "tlb-chunk-path",
    } <= names


def test_kernel_speedups_recorded(payload):
    # The assertion inside bench_cache2000 already pinned bit-equality;
    # here we only require the fast path not to be a slowdown (the >= 5x
    # acceptance number is checked by --check-speedup at real budgets,
    # not under test-runner load).
    for associativity in (1, 2, 4, 8):
        assert speedup_of(payload, f"cache2000-{associativity}way-lru") > 1.0
    assert speedup_of(payload, "tlb-chunk-path") > 1.0


def test_write_and_reload_round_trip(payload, tmp_path):
    path = write_bench(payload, tmp_path / "BENCH_PR3.json")
    reloaded = json.loads(path.read_text())
    assert validate_bench(reloaded) == []
    assert reloaded == json.loads(json.dumps(payload))


def test_validate_rejects_broken_payloads(payload):
    assert validate_bench({"schema": 0}) != []
    bad = json.loads(json.dumps(payload))
    bad["records"][0].pop("config_hash")
    assert any("config_hash" in p for p in validate_bench(bad))
    dupe = json.loads(json.dumps(payload))
    dupe["records"].append(dupe["records"][0])
    assert any("duplicate" in p for p in validate_bench(dupe))


def test_unknown_budget_rejected():
    with pytest.raises(ValueError):
        run_all("galactic")
