"""The public import surface stays importable and complete."""

import importlib

import pytest

import repro


def test_all_names_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


@pytest.mark.parametrize(
    "module",
    [
        "repro.machine",
        "repro.kernel",
        "repro.workloads",
        "repro.caches",
        "repro.core",
        "repro.tracing",
        "repro.harness",
        "repro.farm",
        "repro.streams",
        "repro.analysis",
        "repro.experiments",
        "repro.cli",
    ],
)
def test_subpackages_import(module):
    importlib.import_module(module)


def test_experiment_modules_expose_run_and_render():
    from repro.cli import EXPERIMENTS

    for name, module_name in EXPERIMENTS.items():
        module = importlib.import_module(f"repro.experiments.{module_name}")
        assert hasattr(module, f"run_{module_name}"), name
        assert hasattr(module, "render"), name
