"""The perf-trend watchdog: normalization, gating, the CI contract.

``benchmarks/trend.py`` is the regression gate CI runs over the
committed ``BENCH_*.json`` envelopes; these tests pin its envelope
tolerance (schema-1 and bare lists), its group identity (suite, record,
budget, metric — so tiny-budget CI runs never face quick-budget
baselines) and the exit codes automation depends on.
"""

from __future__ import annotations

import json

import pytest

from benchmarks import trend


def _envelope(suite, budget, records):
    return {"schema": 1, "suite": suite, "budget": budget, "records": records}


def _record(name, created, **results):
    return {
        "name": name,
        "created_unix": created,
        "wall_clock_secs": 0.25,
        "results": results,
        "metrics": {},
    }


def _write(path, payload):
    path.write_text(json.dumps(payload))
    return path


class TestLoadEnvelope:
    def test_schema_envelope(self, tmp_path):
        path = _write(
            tmp_path / "BENCH_X.json",
            _envelope("BENCH_X", "quick", [_record("a", 1, speedup=2.0)]),
        )
        envelope = trend.load_envelope(path)
        assert envelope["suite"] == "BENCH_X"
        assert envelope["budget"] == "quick"
        assert len(envelope["records"]) == 1

    def test_bare_record_list_normalizes(self, tmp_path):
        path = _write(
            tmp_path / "BENCH_BARE.json", [_record("a", 1, speedup=2.0)]
        )
        envelope = trend.load_envelope(path)
        assert envelope["suite"] == "BENCH_BARE"
        assert envelope["budget"] == "unknown"

    @pytest.mark.parametrize(
        "payload",
        ["not json {", '"a string"', '{"records": []}', '{"records": [42]}'],
    )
    def test_bad_layouts_raise_with_filename(self, tmp_path, payload):
        path = tmp_path / "BENCH_BAD.json"
        path.write_text(payload)
        with pytest.raises(ValueError, match="BENCH_BAD"):
            trend.load_envelope(path)


class TestFlatten:
    def test_numeric_leaves_only(self):
        record = {
            "name": "a",
            "wall_clock_secs": 1.5,
            "results": {"speedup": 3.0, "label": "fast", "ok": True},
            "metrics": {"machine.cpu.refs": 100},
        }
        assert trend.flatten_record(record) == {
            "results.speedup": 3.0,
            "metrics.machine.cpu.refs": 100.0,
            "wall_clock_secs": 1.5,
        }

    def test_missing_sections_tolerated(self):
        assert trend.flatten_record({"name": "a"}) == {}


class TestCollect:
    def test_groups_key_on_suite_record_budget_metric(self, tmp_path):
        _write(
            tmp_path / "BENCH_A.json",
            _envelope("S", "quick", [_record("r", 10, speedup=2.0)]),
        )
        _write(
            tmp_path / "BENCH_B.json",
            _envelope("S", "quick", [_record("r", 20, speedup=3.0)]),
        )
        _write(
            tmp_path / "BENCH_C.json",
            _envelope("S", "tiny", [_record("r", 30, speedup=0.5)]),
        )
        groups, problems = trend.collect(sorted(tmp_path.glob("*.json")))
        assert problems == []
        quick = groups[("S", "r", "quick", "results.speedup")]
        assert [s["value"] for s in quick] == [2.0, 3.0]  # created order
        # the tiny-budget run lives in its own group — never compared
        assert [
            s["value"] for s in groups[("S", "r", "tiny", "results.speedup")]
        ] == [0.5]

    def test_load_problems_reported_not_fatal(self, tmp_path):
        (tmp_path / "BENCH_BAD.json").write_text("nope")
        _write(
            tmp_path / "BENCH_OK.json",
            _envelope("S", "quick", [_record("r", 1, speedup=2.0)]),
        )
        groups, problems = trend.collect(sorted(tmp_path.glob("*.json")))
        assert len(groups) == 2  # speedup + wall_clock_secs
        assert len(problems) == 1 and "BENCH_BAD" in problems[0]


class TestCheckRegressions:
    def _groups(self, *values):
        snapshots = [
            {"value": v, "created_unix": i, "source": f"f{i}"}
            for i, v in enumerate(values)
        ]
        return {("S", "r", "quick", "results.speedup"): snapshots}

    def test_regression_past_threshold_fails(self):
        failures = trend.check_regressions(
            self._groups(30.0, 10.0), ("results.speedup",), 25.0
        )
        (failure,) = failures
        assert failure["best"] == 30.0 and failure["latest"] == 10.0
        assert failure["regression_pct"] == pytest.approx(66.67, abs=0.01)

    def test_within_threshold_passes(self):
        assert not trend.check_regressions(
            self._groups(30.0, 25.0), ("results.speedup",), 25.0
        )

    def test_improvement_passes(self):
        assert not trend.check_regressions(
            self._groups(10.0, 30.0), ("results.speedup",), 25.0
        )

    def test_single_snapshot_trivially_passes(self):
        assert not trend.check_regressions(
            self._groups(5.0), ("results.speedup",), 25.0
        )

    def test_ungated_metrics_never_fail(self):
        groups = {
            ("S", "r", "quick", "wall_clock_secs"): [
                {"value": 1.0, "created_unix": 0, "source": "a"},
                {"value": 100.0, "created_unix": 1, "source": "b"},
            ]
        }
        assert not trend.check_regressions(groups, ("results.speedup",), 25.0)

    def test_nonpositive_best_skipped(self):
        assert not trend.check_regressions(
            self._groups(0.0, -1.0), ("results.speedup",), 25.0
        )


class TestMain:
    def _dir_with(self, tmp_path, *values):
        for i, value in enumerate(values):
            _write(
                tmp_path / f"BENCH_{i}.json",
                _envelope(
                    "S", "quick", [_record("r", i, speedup=value)]
                ),
            )
        return tmp_path

    def test_healthy_dir_exits_zero(self, tmp_path, capsys):
        results = self._dir_with(tmp_path, 10.0, 12.0)
        code = trend.main(
            ["--results-dir", str(results), "--check-regressions"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "no gated regressions" in out
        assert "results.speedup" in out

    def test_regression_exits_one(self, tmp_path, capsys):
        results = self._dir_with(tmp_path, 10.0, 1.0)
        code = trend.main(
            ["--results-dir", str(results), "--check-regressions"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_regression_without_check_flag_still_exits_zero(self, tmp_path):
        results = self._dir_with(tmp_path, 10.0, 1.0)
        assert trend.main(["--results-dir", str(results)]) == 0

    def test_empty_dir_exits_two(self, tmp_path):
        assert trend.main(["--results-dir", str(tmp_path)]) == 2

    def test_unreadable_file_warns_and_skips(self, tmp_path, capsys):
        """A rotted envelope must not blind the gate to the healthy
        ones: it is skipped with a warning, the rest still compare."""
        results = self._dir_with(tmp_path, 10.0, 12.0)
        (tmp_path / "BENCH_ROT.json").write_text("{broken")
        code = trend.main(
            ["--results-dir", str(results), "--check-regressions"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "BENCH_ROT" in captured.err
        assert "skipped" in captured.err
        assert "1 file(s) skipped" in captured.out
        assert "no gated regressions" in captured.out

    def test_skipped_files_cannot_mask_a_regression(self, tmp_path, capsys):
        results = self._dir_with(tmp_path, 10.0, 1.0)
        (tmp_path / "BENCH_ROT.json").write_text("{broken")
        code = trend.main(
            ["--results-dir", str(results), "--check-regressions"]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_all_files_unreadable_exits_two(self, tmp_path, capsys):
        (tmp_path / "BENCH_A.json").write_text("{broken")
        (tmp_path / "BENCH_B.json").write_text("not json")
        code = trend.main(["--results-dir", str(tmp_path)])
        assert code == 2
        assert "no numeric metrics" in capsys.readouterr().err

    def test_json_output_lists_skipped_files(self, tmp_path, capsys):
        results = self._dir_with(tmp_path, 10.0)
        (tmp_path / "BENCH_ROT.json").write_text("{broken")
        code = trend.main(["--results-dir", str(results), "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["skipped"]) == 1
        assert "BENCH_ROT" in payload["skipped"][0]

    def test_extra_file_joins_the_comparison(self, tmp_path, capsys):
        results = self._dir_with(tmp_path, 10.0)
        fresh = _write(
            tmp_path / "ci_run.json",
            _envelope("S", "quick", [_record("r", 99, speedup=1.0)]),
        )
        code = trend.main(
            [
                "--results-dir", str(results), "--check-regressions",
                str(fresh),
            ]
        )
        assert code == 1
        assert "ci_run.json" in capsys.readouterr().out

    def test_custom_threshold_and_gate(self, tmp_path):
        results = self._dir_with(tmp_path, 10.0, 8.9)  # 11% off best
        assert trend.main(
            [
                "--results-dir", str(results), "--check-regressions",
                "--threshold", "10",
            ]
        ) == 1
        # gate wall-clock instead: speedup regression no longer matters
        assert trend.main(
            [
                "--results-dir", str(results), "--check-regressions",
                "--gate", "metrics.none",
            ]
        ) == 0

    def test_json_output_is_machine_readable(self, tmp_path, capsys):
        results = self._dir_with(tmp_path, 10.0, 1.0)
        code = trend.main(
            ["--results-dir", str(results), "--check-regressions", "--json"]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["threshold_pct"] == 25.0
        assert len(payload["failures"]) == 1
        gated = [g for g in payload["groups"] if g["gated"]]
        assert gated and gated[0]["metric"] == "results.speedup"

    def test_committed_baselines_pass_the_gate(self, capsys):
        """The CI invocation, verbatim, over the repo's own history."""
        assert trend.main(["--check-regressions"]) == 0
        assert "no gated regressions" in capsys.readouterr().out