"""The trace-driven simulator: both paths, cost model."""

import numpy as np
import pytest

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.tracing.cache2000 import (
    CACHE2000_CYCLES_PER_HIT,
    CACHE2000_MISS_PREMIUM_CYCLES,
    Cache2000,
)


def _addrs(*values):
    return np.array(values, dtype=np.int64)


def test_search_then_replace_loop():
    sim = Cache2000(CacheConfig(size_bytes=64, line_bytes=16))
    assert sim.simulate_chunk(_addrs(0x00, 0x04, 0x10)) == 2
    assert sim.stats.total_refs == 3
    assert sim.stats.total_misses == 2


def test_every_address_is_searched_and_charged():
    """The trace-driven cost structure: hits are never free."""
    sim = Cache2000(CacheConfig(size_bytes=4096))
    sim.simulate_chunk(_addrs(0x00, 0x04, 0x08))  # 1 miss, 2 hits
    expected = 3 * CACHE2000_CYCLES_PER_HIT + 1 * CACHE2000_MISS_PREMIUM_CYCLES
    assert sim.processing_cycles == expected
    assert sim.average_cycles_per_address() == pytest.approx(expected / 3)


def test_vectorized_path_matches_general_path():
    """The fast direct-mapped scan must be bit-identical to the
    reference per-address loop."""
    rng = np.random.default_rng(11)
    addrs = (rng.integers(0, 4096, size=20_000) * 4).astype(np.int64)
    config = CacheConfig(size_bytes=1024, line_bytes=16)
    fast = Cache2000(config)
    slow = Cache2000(config, force_general_path=True)
    for start in range(0, len(addrs), 3000):
        chunk = addrs[start : start + 3000]
        fast.simulate_chunk(chunk)
        slow.simulate_chunk(chunk)
    assert fast.stats.total_misses == slow.stats.total_misses
    assert fast.resident_lines() == slow.resident_lines()


def test_associative_configs_take_the_grouped_fast_path():
    sim = Cache2000(CacheConfig(size_bytes=64, line_bytes=16, associativity=2))
    assert sim.capabilities.selected == "grouped"
    sim.simulate_chunk(_addrs(0x00, 0x20, 0x00))
    assert sim.stats.total_misses == 2  # 2-way set holds both
    assert sim.fastpath_chunks == 1 and sim.general_chunks == 0


def test_random_replacement_stays_on_the_general_path():
    from repro.caches.replacement import make_policy

    sim = Cache2000(
        CacheConfig(size_bytes=64, line_bytes=16, associativity=2),
        policy=make_policy("random", seed=7),
    )
    assert sim.capabilities.selected == "general"
    sim.simulate_chunk(_addrs(0x00, 0x20, 0x00))
    assert sim.fastpath_chunks == 0 and sim.general_chunks == 1


def test_force_general_path_is_respected():
    sim = Cache2000(
        CacheConfig(size_bytes=64, line_bytes=16), force_general_path=True
    )
    assert sim.capabilities.general
    assert "forced:request" in sim.capabilities.reasons


def test_fastpath_dispatch_counts_publish_to_metrics():
    from repro.telemetry.registry import MetricsRegistry

    config = CacheConfig(size_bytes=64, line_bytes=16, associativity=2)
    fast = Cache2000(config)
    slow = Cache2000(config, force_general_path=True)
    for sim in (fast, slow):
        sim.simulate_chunk(_addrs(0x00, 0x20))
        sim.simulate_chunk(_addrs(0x40))
    registry = MetricsRegistry()
    fast.publish_metrics(registry)
    slow.publish_metrics(registry)
    snapshot = registry.snapshot()
    assert snapshot["tracing.cache2000.fastpath{taken=true}"] == 2
    assert snapshot["tracing.cache2000.fastpath{taken=false}"] == 2


def test_virtual_indexing_tags_tids():
    config = CacheConfig(
        size_bytes=64, line_bytes=16, indexing=Indexing.VIRTUAL
    )
    sim = Cache2000(config)
    sim.simulate_chunk(_addrs(0x100), tid=1)
    misses = sim.simulate_chunk(_addrs(0x100), tid=2)
    assert misses == 1  # other task's tag


def test_component_attribution():
    sim = Cache2000(CacheConfig(size_bytes=4096))
    sim.simulate_chunk(_addrs(0x00), component=Component.KERNEL)
    assert sim.stats.misses[Component.KERNEL] == 1
    assert sim.stats.refs[Component.KERNEL] == 1


def test_empty_chunk():
    sim = Cache2000(CacheConfig(size_bytes=4096))
    assert sim.simulate_chunk(np.empty(0, dtype=np.int64)) == 0
