"""The one-pass multi-size direct-mapped sweep."""

import numpy as np
import pytest

from repro.caches.config import CacheConfig
from repro.errors import ConfigError
from repro.tracing.cache2000 import Cache2000
from repro.tracing.multisize import MultiSizeDMSweep, run_multisize_sweep
from repro.workloads.registry import get_workload

SIZES = (1024, 4096, 16384, 65536)


def test_matches_per_size_cache2000_exactly():
    """The sweep must be bit-identical to N separate DM simulations."""
    rng = np.random.default_rng(4)
    addrs = (rng.integers(0, 8192, size=30_000) * 4).astype(np.int64)
    sweep = MultiSizeDMSweep(SIZES)
    references = {
        size: Cache2000(CacheConfig(size_bytes=size)) for size in SIZES
    }
    for start in range(0, len(addrs), 7000):
        chunk = addrs[start : start + 7000]
        sweep.simulate_chunk(chunk)
        for simulator in references.values():
            simulator.simulate_chunk(chunk)
    for size in SIZES:
        assert sweep.miss_counts()[size] == (
            references[size].stats.total_misses
        ), size


def test_monotonicity_of_nested_dm_sizes():
    """hit at 2^k sets => hit at 2^(k+1) sets, so misses never grow
    with size."""
    rng = np.random.default_rng(9)
    addrs = (rng.integers(0, 65536, size=50_000) * 4).astype(np.int64)
    sweep = MultiSizeDMSweep(tuple(1024 << k for k in range(8)))
    sweep.simulate_chunk(addrs)
    assert sweep.check_monotonicity()


def test_generation_paid_once():
    spec = get_workload("espresso")
    one = run_multisize_sweep(spec, 20_000, (4096,))
    many = run_multisize_sweep(spec, 20_000, SIZES)
    assert many.generation_cycles == one.generation_cycles
    assert many.processing_cycles == one.processing_cycles * len(SIZES)


def test_sweep_cheaper_than_separate_trace_runs():
    """The Sugumar economics: one annotated execution for the whole
    size sweep."""
    from repro.harness.runner import run_trace_driven

    spec = get_workload("espresso")
    sweep = run_multisize_sweep(spec, 30_000, SIZES)
    separate = sum(
        run_trace_driven(
            spec, CacheConfig(size_bytes=size), 30_000
        ).overhead_cycles
        for size in SIZES
    )
    assert sweep.overhead_cycles < separate / 2


def test_duplicate_sizes_rejected():
    with pytest.raises(ConfigError):
        MultiSizeDMSweep((4096, 4096))


def test_empty_chunk():
    sweep = MultiSizeDMSweep(SIZES)
    sweep.simulate_chunk(np.empty(0, dtype=np.int64))
    assert sweep.refs == 0
