"""The Pixie-style annotator."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.tracing.pixie import PIXIE_GENERATION_CYCLES_PER_REF, PixieTracer
from repro.workloads.registry import get_workload


def test_traces_exact_reference_count():
    tracer = PixieTracer(get_workload("espresso"), chunk_refs=1000)
    chunks = list(tracer.trace_chunks(2500))
    assert sum(len(c) for c in chunks) == 2500
    assert tracer.refs_traced == 2500


def test_generation_cost_accrues_per_reference():
    tracer = PixieTracer(get_workload("espresso"))
    list(tracer.trace_chunks(5000))
    assert tracer.generation_cycles == 5000 * PIXIE_GENERATION_CYCLES_PER_REF


def test_trace_is_deterministic():
    a = PixieTracer(get_workload("mpeg_play")).full_trace(10_000)
    b = PixieTracer(get_workload("mpeg_play")).full_trace(10_000)
    assert np.array_equal(a, b)


def test_trace_matches_primary_task_stream():
    """Pixie sees exactly what the task executes under Tapeworm."""
    spec = get_workload("xlisp")
    stream = spec.task(spec.primary_task).build_stream(spec.name)
    direct = stream.next_chunk(5000)
    traced = PixieTracer(spec).full_trace(5000)
    assert np.array_equal(direct, traced)


def test_single_user_task_limitation():
    """Pixie refuses non-user tasks — its completeness gap."""
    spec = get_workload("espresso")
    bad = spec.__class__(
        meta=spec.meta,
        tasks=spec.tasks,
        phases=spec.phases,
        primary_task="mach_kernel",
    )
    with pytest.raises(TraceError):
        PixieTracer(bad)


def test_bad_chunk_refs_rejected():
    with pytest.raises(TraceError):
        PixieTracer(get_workload("espresso"), chunk_refs=0)
