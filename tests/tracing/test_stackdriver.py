"""The single-pass stack-algorithm driver."""

import pytest

from repro.tracing.stackdriver import StackDriver
from repro.workloads.registry import get_workload

SIZES = tuple(kb * 1024 for kb in (1, 4, 16, 64))


@pytest.fixture(scope="module")
def sweep():
    driver = StackDriver(get_workload("mpeg_play"))
    return driver.sweep(40_000, SIZES)


def test_one_pass_covers_every_size(sweep):
    assert set(sweep.miss_ratios) == set(SIZES)


def test_ratios_monotone_in_capacity(sweep):
    values = [sweep.miss_ratios[size] for size in SIZES]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_costs_accrue_once_regardless_of_sizes(sweep):
    """The whole point: one trace pass, N answers."""
    driver = StackDriver(get_workload("mpeg_play"))
    single = driver.sweep(40_000, (4096,))
    assert single.processing_cycles == sweep.processing_cycles
    assert single.generation_cycles == sweep.generation_cycles


def test_fully_associative_results_track_trace_driven():
    """Stack results approximate direct-mapped Cache2000 at large sizes
    (where conflicts fade) but diverge at small ones — the accuracy
    trade of the fully-associative shortcut."""
    from repro.caches.config import CacheConfig
    from repro.harness.runner import run_trace_driven

    spec = get_workload("mpeg_play")
    sweep = StackDriver(spec).sweep(40_000, (64 * 1024,))
    trace = run_trace_driven(spec, CacheConfig(size_bytes=64 * 1024), 40_000)
    stack_ratio = sweep.miss_ratios[64 * 1024]
    assert stack_ratio == pytest.approx(trace.miss_ratio, abs=0.01)
