"""System-wide trace-driven simulation (Mogul/Chen baseline)."""

import pytest

from repro._types import Component, Indexing
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.errors import ConfigError
from repro.harness.runner import (
    RunOptions,
    run_system_trace_driven,
    run_trap_driven,
)
from repro.tracing.systrace import SystemTracer
from repro.workloads.registry import get_workload

VIRT_4K = CacheConfig(size_bytes=4096, indexing=Indexing.VIRTUAL)
OPTIONS = RunOptions(total_refs=80_000, trial_seed=2)


def test_requires_virtual_indexing():
    with pytest.raises(ConfigError):
        SystemTracer(CacheConfig(size_bytes=4096))


@pytest.fixture(scope="module")
def report():
    return run_system_trace_driven(get_workload("sdet"), VIRT_4K, OPTIONS)


def test_captures_every_component(report):
    """The Chen93b property: kernel and server references traced too."""
    for component in (Component.USER, Component.KERNEL, Component.BSD_SERVER):
        assert report.refs[component] > 0
        assert report.misses[component] > 0


def test_buffer_drains_when_full(report):
    assert report.buffer_drains >= 1


def test_costs_are_per_reference(report):
    from repro.tracing.systrace import ANNOTATION_CYCLES_PER_REF

    assert report.annotation_cycles == (
        report.total_refs * ANNOTATION_CYCLES_PER_REF
    )
    assert report.slowdown > 10  # trace-driven cost shape


def test_matches_trap_driven_counts_exactly():
    """Same machine execution, same structure, same misses — the
    completeness of system tracing with trap-driven's ground truth.

    Clock interrupts are disabled for the comparison: the tracer does
    not see tick references, and Tapeworm's own dilation would add
    interrupts the uninstrumented tracing run never takes (that
    difference IS Figure 4's bias, measured separately)."""
    spec = get_workload("espresso")
    options = RunOptions(
        total_refs=80_000, trial_seed=2, tick_cycles=10**12
    )
    systrace = run_system_trace_driven(spec, VIRT_4K, options)
    trap = run_trap_driven(spec, TapewormConfig(cache=VIRT_4K), options)
    for component in (Component.USER, Component.BSD_SERVER, Component.KERNEL):
        assert systrace.misses[component] == trap.stats.misses[component], (
            component
        )


def test_trap_driven_is_cheaper_at_low_miss_ratios():
    spec = get_workload("espresso")
    systrace = run_system_trace_driven(spec, VIRT_4K, OPTIONS)
    trap = run_trap_driven(spec, TapewormConfig(cache=VIRT_4K), OPTIONS)
    assert trap.slowdown < systrace.slowdown
