"""Trace chunks, buffers, and file round trips."""

import numpy as np
import pytest

from repro._types import Component
from repro.errors import TraceError
from repro.tracing.trace import TraceBuffer, TraceChunk


def _chunk(n=4, tid=1, component=Component.USER):
    return TraceChunk(
        addresses=np.arange(n, dtype=np.int64) * 4,
        tid=tid,
        component=component,
    )


def test_chunk_length():
    assert len(_chunk(7)) == 7


def test_chunk_must_be_1d():
    with pytest.raises(TraceError):
        TraceChunk(
            addresses=np.zeros((2, 2), dtype=np.int64),
            tid=1,
            component=Component.USER,
        )


def test_buffer_fills_at_capacity():
    buffer = TraceBuffer(capacity_refs=10)
    assert not buffer.append(_chunk(6))
    assert buffer.append(_chunk(6))  # 12 >= 10: time to simulate
    assert len(buffer) == 12


def test_drain_resets(Component=Component):
    buffer = TraceBuffer()
    buffer.append(_chunk(3))
    chunks = buffer.drain()
    assert len(chunks) == 1
    assert len(buffer) == 0
    assert buffer.chunks() == []


def test_save_load_roundtrip(tmp_path):
    buffer = TraceBuffer()
    buffer.append(_chunk(4, tid=1, component=Component.USER))
    buffer.append(_chunk(2, tid=0, component=Component.KERNEL))
    path = tmp_path / "trace.npz"
    buffer.save(path)
    loaded = TraceBuffer.load(path)
    chunks = loaded.chunks()
    assert len(chunks) == 2
    assert chunks[0].addresses.tolist() == [0, 4, 8, 12]
    assert chunks[1].component is Component.KERNEL
    assert chunks[1].tid == 0


def test_save_empty_rejected(tmp_path):
    with pytest.raises(TraceError):
        TraceBuffer().save(tmp_path / "empty.npz")


def test_load_missing_file_rejected(tmp_path):
    with pytest.raises(TraceError):
        TraceBuffer.load(tmp_path / "ghost.npz")


def test_load_malformed_rejected(tmp_path):
    path = tmp_path / "bad.npz"
    np.savez(path, addresses=np.zeros(1))
    with pytest.raises(TraceError):
        TraceBuffer.load(path)
