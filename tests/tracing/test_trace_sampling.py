"""Software set-sample filtering of traces."""

import numpy as np

from repro.caches.config import CacheConfig
from repro.tracing.sampling import FILTER_CYCLES_PER_REF, TraceSetSampler


def test_filter_keeps_only_sampled_sets():
    config = CacheConfig(size_bytes=1024, line_bytes=16)  # 64 sets
    sampler = TraceSetSampler(config, fraction_denominator=4, seed=2)
    addrs = (np.arange(0, 64) * 16).astype(np.int64)  # one per set
    kept = sampler.filter_chunk(addrs)
    assert len(kept) == 16
    sets = (kept >> 4) % 64
    assert all(sampler.sampler.covers_set(int(s)) for s in sets)


def test_every_input_address_pays_the_filter_cost():
    """The pre-processing overhead trace-driven sampling cannot avoid."""
    config = CacheConfig(size_bytes=1024, line_bytes=16)
    sampler = TraceSetSampler(config, fraction_denominator=8)
    sampler.filter_chunk((np.arange(1000) * 16).astype(np.int64))
    assert sampler.preprocessing_cycles == 1000 * FILTER_CYCLES_PER_REF
    assert sampler.refs_in == 1000
    assert sampler.refs_out < 1000


def test_expansion_factor():
    config = CacheConfig(size_bytes=1024, line_bytes=16)
    assert TraceSetSampler(config, 8).expansion_factor == 8
