"""TaskSpec / WorkloadSpec machinery details."""

import pytest

from repro._types import Component, PAGE_SIZE
from repro.errors import ConfigError
from repro.workloads.base import (
    DATA_BASE_VA,
    TEXT_BASE_VA,
    TaskSpec,
    WorkloadMeta,
)


def _task(**kwargs):
    defaults = dict(
        name="t",
        component=Component.USER,
        binary="prog",
        shapes=((2048, 1.0, 256, 2), (4096, 2.0, 512, 1)),
    )
    defaults.update(kwargs)
    return TaskSpec(**defaults)


class TestTaskSpec:
    def test_procedures_packed_from_text_base(self):
        procs = _task().procedures()
        assert procs[0].base_va == TEXT_BASE_VA
        assert procs[1].base_va == TEXT_BASE_VA + 2048

    def test_text_pages_cover_span(self):
        assert _task().text_pages() == -(-6144 // PAGE_SIZE)

    def test_layout_shares_text_by_binary(self):
        layout = _task().layout()
        assert layout.region_named("text").share_key == "text:prog"

    def test_data_region_only_when_shaped(self):
        bare = _task().layout()
        with pytest.raises(KeyError):
            bare.region_named("data")
        shaped = _task(data_shapes=((8192, 1.0, 4096, 1),)).layout()
        data = shaped.region_named("data")
        assert data.start_vpn == DATA_BASE_VA // PAGE_SIZE
        assert data.share_key is None

    def test_stream_seed_depends_on_workload_and_task(self):
        task = _task()
        assert task.stream_seed("w1") != task.stream_seed("w2")
        other = _task(name="u")
        assert task.stream_seed("w1") != other.stream_seed("w1")

    def test_data_stream_seed_differs_from_instruction_seed(self):
        task = _task(data_shapes=((8192, 1.0, 4096, 1),))
        instr = task.build_stream("w")
        data = task.build_data_stream("w")
        assert instr.seed != data.seed

    def test_no_data_stream_without_shapes(self):
        assert _task().build_data_stream("w") is None


class TestWorkloadMeta:
    def test_fraction_sum_enforced(self):
        with pytest.raises(ConfigError):
            WorkloadMeta(
                name="bad",
                description="",
                instructions_millions=1,
                run_time_secs=1,
                frac_kernel=0.5,
                frac_bsd=0.0,
                frac_x=0.0,
                frac_user=0.4,
                user_task_count=1,
            )

    def test_effective_cpi(self):
        meta = WorkloadMeta(
            name="m",
            description="",
            instructions_millions=100,
            run_time_secs=8.0,
            frac_kernel=0.0,
            frac_bsd=0.0,
            frac_x=0.0,
            frac_user=1.0,
            user_task_count=1,
        )
        assert meta.effective_cpi == pytest.approx(2.0)
