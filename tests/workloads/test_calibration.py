"""Calibration regression tests: the Table 6 bands must not drift.

The synthetic workloads are tuned so dedicated-cache local miss ratios
at 4 KB land near the values implied by Table 6 (see DESIGN.md).  These
tests pin generous bands around those targets so future edits to the
locality shapes cannot silently invalidate the reproduced tables.
"""

import pytest

from repro._types import Component
from repro.caches.config import CacheConfig
from repro.core.tapeworm import TapewormConfig
from repro.harness.runner import RunOptions, run_trap_driven
from repro.workloads.registry import get_workload

pytestmark = pytest.mark.slow

#: dedicated 4 KB local miss-ratio targets implied by Table 6 (misses /
#: component references, references derived via the CPI-weighted split)
USER_TARGETS = {
    "xlisp": 0.074,
    "espresso": 0.0034,
    "eqntott": 0.0001,
    "mpeg_play": 0.064,
    "jpeg_play": 0.0022,
    "ousterhout": 0.0165,
    "sdet": 0.118,
    "kenbus": 0.19,
}

KERNEL_TARGETS = {
    "xlisp": 0.035,
    "espresso": 0.153,
    "eqntott": 0.152,
    "mpeg_play": 0.064,
    "jpeg_play": 0.067,
    "ousterhout": 0.086,
    "sdet": 0.054,
    "kenbus": 0.16,
}


def _local_ratio(workload: str, component: Component) -> float:
    spec = get_workload(workload)
    report = run_trap_driven(
        spec,
        TapewormConfig(cache=CacheConfig(size_bytes=4096)),
        RunOptions(
            total_refs=250_000, trial_seed=11, simulate=frozenset({component})
        ),
    )
    return report.local_miss_ratio(component)


@pytest.mark.parametrize("workload", sorted(USER_TARGETS))
def test_user_component_band(workload):
    measured = _local_ratio(workload, Component.USER)
    target = USER_TARGETS[workload]
    upper = max(target * 3, 0.006)
    if workload == "ousterhout":
        # 15 tasks sharing a quick-budget run get ~4k references each,
        # so per-task compulsory misses dominate in a way the paper's
        # 8.7M-reference tasks never saw; the band widens accordingly
        upper = 0.10
    assert measured < upper, (measured, target)
    assert measured > target / 4, (measured, target)


@pytest.mark.parametrize("workload", ["espresso", "mpeg_play", "kenbus"])
def test_kernel_component_band(workload):
    measured = _local_ratio(workload, Component.KERNEL)
    target = KERNEL_TARGETS[workload]
    assert target / 3 < measured < target * 3, (measured, target)


def test_ordering_across_workloads():
    """The qualitative orderings Table 6's discussion rests on."""
    mpeg = _local_ratio("mpeg_play", Component.USER)
    jpeg = _local_ratio("jpeg_play", Component.USER)
    eqntott = _local_ratio("eqntott", Component.USER)
    kenbus = _local_ratio("kenbus", Component.USER)
    assert eqntott < jpeg < mpeg < kenbus
