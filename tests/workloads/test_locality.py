"""Reference-stream generators."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.locality import (
    BlockLoopStream,
    MixedStream,
    Procedure,
    lay_out_procedures,
)


def _proc(**kwargs):
    defaults = dict(
        base_va=0x10000, size_bytes=1024, weight=1.0,
        block_bytes=256, block_repeats=2,
    )
    defaults.update(kwargs)
    return Procedure(**defaults)


class TestProcedure:
    def test_template_shape(self):
        proc = _proc(size_bytes=512, block_bytes=256, block_repeats=3)
        template = proc.template()
        # 2 blocks x 64 words x 3 repeats
        assert len(template) == 2 * 64 * 3
        assert template[0] == 0x10000
        # first block repeats before the second starts
        assert template[64] == 0x10000
        assert template[64 * 3] == 0x10100

    def test_passes_tile_the_whole_walk(self):
        proc = _proc(size_bytes=256, block_repeats=1, passes=2)
        template = proc.template()
        assert len(template) == 128
        assert np.array_equal(template[:64], template[64:])

    @pytest.mark.parametrize("kwargs", [
        {"size_bytes": 300},             # not a block multiple
        {"size_bytes": 0},
        {"base_va": 0x10001},            # unaligned
        {"weight": 0},
        {"block_repeats": 0},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            _proc(**kwargs)


class TestBlockLoopStream:
    def test_exact_chunk_lengths(self):
        stream = BlockLoopStream((_proc(),), seed=1)
        for n in (1, 100, 4096, 37):
            assert len(stream.next_chunk(n)) == n
        assert stream.refs_generated == 1 + 100 + 4096 + 37

    def test_deterministic_in_seed(self):
        a = BlockLoopStream((_proc(), _proc(base_va=0x20000)), seed=5)
        b = BlockLoopStream((_proc(), _proc(base_va=0x20000)), seed=5)
        assert np.array_equal(a.next_chunk(5000), b.next_chunk(5000))

    def test_different_seeds_differ(self):
        a = BlockLoopStream((_proc(), _proc(base_va=0x20000)), seed=5)
        b = BlockLoopStream((_proc(), _proc(base_va=0x20000)), seed=6)
        assert not np.array_equal(a.next_chunk(5000), b.next_chunk(5000))

    def test_chunking_does_not_change_content(self):
        a = BlockLoopStream((_proc(), _proc(base_va=0x20000)), seed=9)
        b = BlockLoopStream((_proc(), _proc(base_va=0x20000)), seed=9)
        whole = a.next_chunk(3000)
        parts = np.concatenate([b.next_chunk(n) for n in (1000, 500, 1500)])
        assert np.array_equal(whole, parts)

    def test_addresses_stay_in_procedure_ranges(self):
        procs = (_proc(), _proc(base_va=0x40000, size_bytes=512))
        stream = BlockLoopStream(procs, seed=2)
        chunk = stream.next_chunk(10_000)
        in_p0 = (chunk >= 0x10000) & (chunk < 0x10400)
        in_p1 = (chunk >= 0x40000) & (chunk < 0x40200)
        assert (in_p0 | in_p1).all()

    def test_footprint_merges_overlaps(self):
        procs = (
            _proc(base_va=0x10000, size_bytes=1024),
            _proc(base_va=0x10200, size_bytes=1024),  # overlaps
            _proc(base_va=0x20000, size_bytes=256),
        )
        stream = BlockLoopStream(procs, seed=0)
        assert stream.footprint_bytes() == 0x600 + 256

    def test_span(self):
        stream = BlockLoopStream(
            (_proc(), _proc(base_va=0x40000, size_bytes=512)), seed=0
        )
        assert stream.span() == (0x10000, 0x40200)

    def test_needs_a_procedure(self):
        with pytest.raises(ConfigError):
            BlockLoopStream((), seed=0)

    def test_negative_chunk_rejected(self):
        stream = BlockLoopStream((_proc(),), seed=0)
        with pytest.raises(ConfigError):
            stream.next_chunk(-1)


class TestMixedStream:
    def test_interleaves_instruction_and_data_runs(self):
        instr = BlockLoopStream((_proc(base_va=0x10000),), seed=1)
        data = BlockLoopStream((_proc(base_va=0x400000),), seed=2)
        mixed = MixedStream(instr, data, instr_run=8, data_run=4)
        chunk = mixed.next_chunk(24)
        is_data = chunk >= 0x400000
        assert is_data.tolist() == [False] * 8 + [True] * 4 + [False] * 8 + [True] * 4

    def test_exact_lengths_across_chunks(self):
        instr = BlockLoopStream((_proc(),), seed=1)
        data = BlockLoopStream((_proc(base_va=0x400000),), seed=2)
        mixed = MixedStream(instr, data, instr_run=48, data_run=16)
        total = sum(len(mixed.next_chunk(n)) for n in (100, 7, 993))
        assert total == 1100


def test_lay_out_procedures_packs_contiguously():
    procs = lay_out_procedures(
        0x10000, [(1024, 1.0, 256, 2), (512, 2.0, 256, 1)]
    )
    assert procs[0].base_va == 0x10000
    assert procs[1].base_va == 0x10400
    assert procs[1].weight == 2.0
