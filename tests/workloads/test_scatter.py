"""Scattered procedure layouts."""

import pytest

from repro.errors import ConfigError
from repro.workloads.locality import (
    BlockLoopStream,
    lay_out_procedures,
    scatter_procedures,
)

SHAPES = [(1024, 2.0, 256, 2), (2048, 1.0, 256, 1), (512, 3.0, 256, 4)]


def test_no_overlaps_and_within_span():
    procs = scatter_procedures(0x10000, SHAPES, span_bytes=64 * 1024, seed=3)
    spans = sorted((p.base_va, p.end_va) for p in procs)
    for (_, a_end), (b_start, _) in zip(spans, spans[1:]):
        assert a_end <= b_start
    assert spans[0][0] >= 0x10000
    assert spans[-1][1] <= 0x10000 + 64 * 1024


def test_deterministic_per_seed():
    a = scatter_procedures(0, SHAPES, span_bytes=64 * 1024, seed=9)
    b = scatter_procedures(0, SHAPES, span_bytes=64 * 1024, seed=9)
    assert [p.base_va for p in a] == [p.base_va for p in b]
    c = scatter_procedures(0, SHAPES, span_bytes=64 * 1024, seed=10)
    assert [p.base_va for p in a] != [p.base_va for p in c]


def test_same_shapes_as_contiguous():
    scattered = scatter_procedures(0, SHAPES, span_bytes=64 * 1024, seed=1)
    contiguous = lay_out_procedures(0, SHAPES)
    assert sorted(p.size_bytes for p in scattered) == sorted(
        p.size_bytes for p in contiguous
    )
    assert sorted(p.weight for p in scattered) == sorted(
        p.weight for p in contiguous
    )


def test_streams_build_over_scattered_layouts():
    procs = scatter_procedures(0, SHAPES, span_bytes=64 * 1024, seed=2)
    stream = BlockLoopStream(procs, seed=0)
    chunk = stream.next_chunk(2000)
    lo, hi = stream.span()
    assert ((chunk >= lo) & (chunk < hi)).all()


def test_span_too_small_rejected():
    with pytest.raises(ConfigError):
        scatter_procedures(0, SHAPES, span_bytes=2048, seed=0)
