"""Workload specifications against the paper's Tables 3 and 4."""

import pytest

from repro._types import Component
from repro.errors import ConfigError
from repro.workloads.base import (
    DemandShare,
    PhaseSpec,
    TaskSpec,
    WorkloadMeta,
    WorkloadSpec,
)
from repro.workloads.registry import WORKLOAD_NAMES, all_workloads, get_workload

#: Table 4 rows: (instructions 1e6, run secs, kernel, bsd, x, user, tasks)
TABLE_4 = {
    "xlisp": (1412, 67.52, 0.073, 0.071, 0.0, 0.856, 1),
    "espresso": (534, 26.80, 0.029, 0.019, 0.0, 0.951, 1),
    "eqntott": (1306, 60.98, 0.015, 0.012, 0.0, 0.972, 1),
    "mpeg_play": (1423, 95.53, 0.241, 0.273, 0.040, 0.446, 1),
    "jpeg_play": (1793, 89.70, 0.091, 0.094, 0.026, 0.788, 1),
    "ousterhout": (567, 37.89, 0.480, 0.314, 0.0, 0.206, 15),
    "sdet": (823, 43.70, 0.437, 0.355, 0.0, 0.208, 281),
    "kenbus": (176, 23.13, 0.489, 0.291, 0.0, 0.220, 238),
}


def test_all_eight_workloads_registered():
    assert set(WORKLOAD_NAMES) == set(TABLE_4)


@pytest.mark.parametrize("name", sorted(TABLE_4))
def test_meta_matches_table_4(name):
    meta = get_workload(name).meta
    instr, secs, kern, bsd, x, user, tasks = TABLE_4[name]
    assert meta.instructions_millions == instr
    assert meta.run_time_secs == secs
    assert meta.frac_kernel == kern
    assert meta.frac_bsd == bsd
    assert meta.frac_x == x
    assert meta.frac_user == user
    assert meta.user_task_count == tasks


@pytest.mark.parametrize("name", sorted(TABLE_4))
def test_fork_script_creates_the_right_task_count(name):
    spec = get_workload(name)
    forked = set()
    for phase in spec.phases:
        forked.update(phase.forks)
    user_forked = {
        n for n in forked if spec.task(n).component is Component.USER
    }
    assert len(user_forked) == spec.meta.user_task_count


@pytest.mark.parametrize("name", sorted(TABLE_4))
def test_phase_weights_sum_to_one(name):
    spec = get_workload(name)
    assert sum(p.weight for p in spec.phases) == pytest.approx(1.0)


@pytest.mark.parametrize("name", sorted(TABLE_4))
def test_exits_only_name_forked_tasks(name):
    spec = get_workload(name)
    forked = set()
    for phase in spec.phases:
        forked.update(phase.forks)
        for exited in phase.exits:
            assert exited in forked


def test_effective_cpi_in_plausible_band():
    for spec in all_workloads():
        assert 1.1 < spec.meta.effective_cpi < 4.0


def test_unknown_workload_rejected():
    with pytest.raises(ConfigError):
        get_workload("quake")


def test_spec_validation_catches_unknown_demand():
    meta = get_workload("espresso").meta
    user = get_workload("espresso").task("espresso")
    with pytest.raises(ConfigError):
        WorkloadSpec(
            meta=meta,
            tasks={"espresso": user},
            phases=(
                PhaseSpec(weight=1.0, demands=(DemandShare("ghost", 1.0),)),
            ),
            primary_task="espresso",
        )


def test_task_layouts_cover_stream_spans():
    """Every stream address must fall inside the task's declared regions
    (or the system tasks' boot layouts)."""
    from repro._types import PAGE_SIZE
    from repro.kernel.servers import (
        bsd_server_layout,
        kernel_layout,
        x_server_layout,
    )
    from repro.workloads.base import SYSTEM_TASK_NAMES

    boot_layouts = {
        SYSTEM_TASK_NAMES[Component.KERNEL]: kernel_layout(),
        SYSTEM_TASK_NAMES[Component.BSD_SERVER]: bsd_server_layout(),
        SYSTEM_TASK_NAMES[Component.X_SERVER]: x_server_layout(),
    }
    for spec in all_workloads():
        for task in spec.tasks.values():
            layout = boot_layouts.get(task.name) or task.layout()
            for proc in task.procedures():
                for va in (proc.base_va, proc.end_va - 4):
                    region = layout.region_of(va // PAGE_SIZE)
                    assert region is not None, (
                        f"{spec.name}/{task.name}: {va:#x} outside regions"
                    )


def test_binary_sharing_among_children():
    """sdet's utility binaries are shared across its 280 children."""
    spec = get_workload("sdet")
    binaries = {
        t.binary
        for t in spec.user_task_specs()
        if t.name.startswith("sdet_0") or t.name.startswith("sdet_1")
    }
    assert len(binaries) <= 6


def test_scale_factor():
    spec = get_workload("espresso")
    assert spec.scale_factor(534_000) == pytest.approx(1000.0)
